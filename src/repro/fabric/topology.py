"""Topologies: who talks to whom, in which round, at what measured cost.

A :class:`Topology` owns round management and the communication ledger for
one run; payload bits are always **measured** (via
:meth:`~repro.fabric.payload.Payload.measured_bits`), never declared.  Four
concrete topologies cover the paper's models:

* :class:`StarTopology` — the classic coordinator model: one hub, ``k``
  sites, one ledger round per down+up exchange;
* :class:`TreeTopology` — the tree-aggregation coordinator variant: sites
  form a ``fanout``-ary tree under the hub, collectives run level-synchronous
  (one ledger round per tree level), combinable gathers shrink the hub's
  per-round load from ``k * b`` to ``fanout * b`` at the price of a
  ``ceil(log_fanout k)`` round factor;
* :class:`GridTopology` — the round-synchronous MPC substrate: point-to-point
  sends plus the Goodrich et al. broadcast/aggregation trees, with per-round
  per-machine load accounting;
* :class:`StreamTopology` — the single-reader stream: no communication, one
  ledger round per pass.

Node-local computation is delegated to the attached
:class:`~repro.fabric.transport.Transport`; the topology only decides *when*
nodes run and what the message flow around them costs.  Every topology keeps
the same four aggregate currencies — ``rounds``, ``total_bits``,
``max_message_bits``, ``max_load_bits`` — which is what
``SolveResult.communication`` surfaces from one code path.
"""

from __future__ import annotations

import time
from typing import Any, Callable, Iterator, Optional, Sequence

import numpy as np

from ..core.accounting import BitCostModel, RoundLedger
from ..core.budget import active_meter
from ..core.exceptions import CommunicationError
from ..resilience.faults import active_fault_plan
from .payload import Payload
from .transport import InProcessTransport, Transport, new_session

__all__ = [
    "Topology",
    "StarTopology",
    "TreeTopology",
    "GridTopology",
    "StreamTopology",
]

#: Hub pseudo-node id used in load accounting by the coordinator topologies.
HUB = -1


class Topology:
    """Shared plumbing: ledger, aggregate counters, and node-state hosting."""

    def __init__(
        self,
        num_nodes: int,
        transport: Optional[Transport] = None,
        cost_model: Optional[BitCostModel] = None,
    ) -> None:
        if num_nodes < 1:
            raise ValueError("need at least one node")
        self.num_nodes = int(num_nodes)
        self.transport = transport or InProcessTransport()
        self.cost_model = cost_model or BitCostModel()
        self.ledger = RoundLedger()
        self.session = new_session()
        self.total_bits = 0
        self.max_message_bits = 0
        self.max_load_bits = 0

    # ------------------------------------------------------------------ #
    # Node state hosting (delegated to the transport)
    # ------------------------------------------------------------------ #

    def share(self, key: str, value: Any) -> None:
        """Install a session-shared object nodes reference via ``SharedRef``.

        Ships large read-only objects (the problem instance) once per worker
        instead of once per node state.
        """
        self.transport.init_shared(self.session, key, value)

    def init_state(self, node_id: int, state: Any) -> None:
        """Install one node's initial state on the transport."""
        self.transport.init_node(self.session, node_id, state)

    def run_all(
        self,
        fn: Callable[..., Any],
        args_list: Sequence[tuple],
        node_ids: Optional[Sequence[int]] = None,
    ) -> list[Any]:
        """Run ``fn(state, *args) -> (state, result)`` on the listed nodes."""
        ids = list(range(self.num_nodes)) if node_ids is None else list(node_ids)
        plan = getattr(self.transport, "_fault_plan", None) or active_fault_plan()
        if plan is not None:
            # Chaos probe: a matching ``slow_node`` spec stalls this node's
            # dispatch — pure latency, never divergence, so faulted solves
            # stay bit-identical.
            for node_id in ids:
                spec = plan.take("node", node=node_id)
                if spec is not None and spec.kind == "slow_node" and spec.delay_s > 0:
                    time.sleep(spec.delay_s)
        return self.transport.run_nodes(self.session, ids, fn, args_list)

    def run_on(self, node_id: int, fn: Callable[..., Any], *args: Any) -> Any:
        return self.transport.run_node(self.session, node_id, fn, *args)

    def close(self) -> None:
        """Release this run's node states; tear down a run-private transport.

        Shared transports (the default in-process one is per-run anyway, and
        the reusable process pool is shared deliberately) only drop this
        session's states; a transport marked ``private`` — e.g. a dedicated
        ``reuse_pool=False`` process pool — is fully closed so its worker
        processes cannot leak.
        """
        self.transport.release(self.session)
        if self.transport.private:
            self.transport.close()

    # ------------------------------------------------------------------ #
    # Aggregates
    # ------------------------------------------------------------------ #

    @property
    def rounds(self) -> int:
        return self.ledger.num_rounds

    def measure(self, payload: Payload) -> int:
        """Measured bit size of one payload under this topology's cost model."""
        return payload.measured_bits(self.cost_model)

    def _note_message(self, bits: int) -> None:
        self.total_bits += bits
        self.max_message_bits = max(self.max_message_bits, bits)
        # Per-request communication budgets (session/service API): every
        # measured message is charged against the active meter, if any.
        meter = active_meter()
        if meter is not None:
            meter.charge_bits(bits)

    def _note_round_load(self, load: int) -> None:
        self.max_load_bits = max(self.max_load_bits, load)


class StarTopology(Topology):
    """Hub-and-spoke coordinator communication: one ledger round per exchange."""

    def __init__(
        self,
        num_sites: int,
        transport: Optional[Transport] = None,
        cost_model: Optional[BitCostModel] = None,
    ) -> None:
        super().__init__(num_sites, transport, cost_model)
        self._round_open = False
        self._bits_down = 0
        self._bits_up = 0
        # Per-round sent+received bits per participant (hub is the last slot).
        self._sent = np.zeros(self.num_nodes + 1, dtype=np.int64)
        self._received = np.zeros(self.num_nodes + 1, dtype=np.int64)

    @property
    def num_sites(self) -> int:
        return self.num_nodes

    def begin_round(self) -> None:
        if self._round_open:
            raise CommunicationError("previous round is still open")
        self._round_open = True
        self._bits_down = 0
        self._bits_up = 0
        self._sent[:] = 0
        self._received[:] = 0

    def end_round(self) -> None:
        if not self._round_open:
            raise CommunicationError("no round is open")
        load = int(max(self._sent.max(initial=0), self._received.max(initial=0)))
        self._note_round_load(load)
        self.ledger.record(
            bits_down=self._bits_down,
            bits_up=self._bits_up,
            bits=self._bits_down + self._bits_up,
            load=load,
        )
        self._round_open = False

    def _check_site(self, site_id: int) -> None:
        if not self._round_open:
            raise CommunicationError("messages may only be sent inside an open round")
        if not 0 <= site_id < self.num_nodes:
            raise CommunicationError(f"site {site_id} does not exist")

    def send_down(self, site_id: int, payload: Payload) -> Payload:
        """Hub -> site; returns the payload as the site observes it."""
        self._check_site(site_id)
        bits = self.measure(payload)
        self._bits_down += bits
        self._sent[-1] += bits
        self._received[site_id] += bits
        self._note_message(bits)
        return self.transport.deliver(payload)

    def send_up(self, site_id: int, payload: Payload) -> Payload:
        """Site -> hub; returns the payload as the hub observes it."""
        self._check_site(site_id)
        bits = self.measure(payload)
        self._bits_up += bits
        self._sent[site_id] += bits
        self._received[-1] += bits
        self._note_message(bits)
        return self.transport.deliver(payload)

    def broadcast_down(self, payload: Payload) -> Payload:
        """The same payload from the hub to every site (k messages)."""
        delivered = payload
        for site_id in range(self.num_nodes):
            delivered = self.send_down(site_id, payload)
        return delivered

    def scatter_down(self, payloads: Sequence[Payload]) -> list[Payload]:
        """Per-site payloads from the hub (one message per site)."""
        if len(payloads) != self.num_nodes:
            raise CommunicationError("need exactly one payload per site")
        return [self.send_down(s, p) for s, p in enumerate(payloads)]

    def gather_up(
        self, payloads: Sequence[Payload], combinable: bool = False
    ) -> list[Payload]:
        """Per-site payloads to the hub (``combinable`` is a no-op on a star)."""
        if len(payloads) != self.num_nodes:
            raise CommunicationError("need exactly one payload per site")
        return [self.send_up(s, p) for s, p in enumerate(payloads)]


class TreeTopology(Topology):
    """Tree-aggregation coordinator variant with the same collective API.

    Sites form a ``fanout``-ary heap-ordered tree rooted at site 0; the hub
    attaches above the root.  Collectives run level by level and every level
    is one ledger round, so one driver exchange costs ``depth_down +
    depth_up`` rounds instead of 1 — but a combinable gather delivers at most
    ``fanout`` messages to any node per round, collapsing the hub's per-round
    load from ``k * b`` (star) to ``b``.
    """

    def __init__(
        self,
        num_sites: int,
        fanout: int = 2,
        transport: Optional[Transport] = None,
        cost_model: Optional[BitCostModel] = None,
    ) -> None:
        super().__init__(num_sites, transport, cost_model)
        if fanout < 2:
            raise ValueError(f"fanout must be >= 2, got {fanout}")
        self.fanout = int(fanout)
        self._round_open = False
        # Pending level records of the open exchange:
        # (down: bool, bits, per-node sent, per-node received).
        self._levels: list[tuple[bool, int, np.ndarray, np.ndarray]] = []
        # Level (depth) of each site; root (site 0) has level 0.
        self._site_level = np.zeros(self.num_nodes, dtype=int)
        for site in range(1, self.num_nodes):
            self._site_level[site] = self._site_level[self._parent(site)] + 1
        self.depth = int(self._site_level.max(initial=0)) + 1  # + hub -> root

    @property
    def num_sites(self) -> int:
        return self.num_nodes

    def _parent(self, site: int) -> int:
        return (site - 1) // self.fanout

    def _children(self, site: int) -> range:
        first = self.fanout * site + 1
        return range(first, min(first + self.fanout, self.num_nodes))

    def _subtree(self, site: int) -> list[int]:
        stack, seen = [site], []
        while stack:
            node = stack.pop()
            seen.append(node)
            stack.extend(self._children(node))
        return seen

    def begin_round(self) -> None:
        if self._round_open:
            raise CommunicationError("previous round is still open")
        self._round_open = True
        self._levels = []

    def end_round(self) -> None:
        """Close the exchange: one ledger round per accumulated tree level."""
        if not self._round_open:
            raise CommunicationError("no round is open")
        for down, bits, sent, received in self._levels:
            load = int(max(sent.max(initial=0), received.max(initial=0)))
            self._note_round_load(load)
            self.ledger.record(
                bits_down=bits if down else 0,
                bits_up=0 if down else bits,
                bits=bits,
                load=load,
            )
        self._levels = []
        self._round_open = False

    def _charge_level(
        self, down: bool, edges: Sequence[tuple[int, int, int]]
    ) -> None:
        """One synchronous level: ``(sender, receiver, bits)`` per edge.

        Node id ``HUB`` denotes the hub; it occupies the extra slot of the
        per-node arrays.
        """
        if not self._round_open:
            raise CommunicationError("messages may only be sent inside an open round")
        sent = np.zeros(self.num_nodes + 1, dtype=np.int64)
        received = np.zeros(self.num_nodes + 1, dtype=np.int64)
        bits_total = 0
        for sender, receiver, bits in edges:
            sent[sender] += bits
            received[receiver] += bits
            bits_total += bits
            self._note_message(bits)
        self._levels.append((down, bits_total, sent, received))

    # ------------------------------------------------------------------ #
    # Collectives (same driver-facing API as StarTopology)
    # ------------------------------------------------------------------ #

    def broadcast_down(self, payload: Payload) -> Payload:
        """One payload to every site: each tree edge forwards it once."""
        bits = self.measure(payload)
        self._charge_level(True, [(HUB, 0, bits)])
        for level in range(int(self._site_level.max(initial=0))):
            edges = [
                (parent, child, bits)
                for parent in np.flatnonzero(self._site_level == level)
                for child in self._children(int(parent))
            ]
            if edges:
                self._charge_level(True, edges)
        return self.transport.deliver(payload)

    def scatter_down(self, payloads: Sequence[Payload]) -> list[Payload]:
        """Per-site payloads, forwarded along the tree path to each site.

        The edge into a node carries the payloads of that node's whole
        subtree, so the hub's single message to the root bundles everything —
        scatters are where the star wins and the tree pays.
        """
        if len(payloads) != self.num_nodes:
            raise CommunicationError("need exactly one payload per site")
        sizes = np.asarray([self.measure(p) for p in payloads], dtype=np.int64)
        subtree_bits = np.zeros(self.num_nodes, dtype=np.int64)
        for site in range(self.num_nodes):
            subtree_bits[site] = sizes[self._subtree(site)].sum()
        self._charge_level(True, [(HUB, 0, int(subtree_bits[0]))])
        for level in range(int(self._site_level.max(initial=0))):
            edges = [
                (int(parent), child, int(subtree_bits[child]))
                for parent in np.flatnonzero(self._site_level == level)
                for child in self._children(int(parent))
            ]
            if edges:
                self._charge_level(True, edges)
        return [self.transport.deliver(p) for p in payloads]

    def gather_up(
        self, payloads: Sequence[Payload], combinable: bool = False
    ) -> list[Payload]:
        """Per-site payloads converge-cast to the hub.

        With ``combinable=True`` an internal node merges its subtree into one
        payload-sized message (the tree's raison d'être); otherwise subtree
        payloads are forwarded verbatim and the edge carries their sum.
        """
        if len(payloads) != self.num_nodes:
            raise CommunicationError("need exactly one payload per site")
        sizes = np.asarray([self.measure(p) for p in payloads], dtype=np.int64)
        if combinable:
            up_bits = np.zeros(self.num_nodes, dtype=np.int64)
            for site in range(self.num_nodes):
                subtree = self._subtree(site)
                up_bits[site] = int(sizes[subtree].max(initial=0))
        else:
            up_bits = np.zeros(self.num_nodes, dtype=np.int64)
            for site in range(self.num_nodes):
                up_bits[site] = int(sizes[self._subtree(site)].sum())
        for level in range(int(self._site_level.max(initial=0)), 0, -1):
            edges = [
                (int(child), self._parent(int(child)), int(up_bits[child]))
                for child in np.flatnonzero(self._site_level == level)
            ]
            if edges:
                self._charge_level(False, edges)
        self._charge_level(False, [(0, HUB, int(up_bits[0]))])
        return [self.transport.deliver(p) for p in payloads]


class GridTopology(Topology):
    """Round-synchronous all-to-all MPC communication with load accounting."""

    def __init__(
        self,
        num_machines: int,
        transport: Optional[Transport] = None,
        cost_model: Optional[BitCostModel] = None,
    ) -> None:
        super().__init__(num_machines, transport, cost_model)
        self._round_open = False
        self._sent = np.zeros(self.num_nodes, dtype=np.int64)
        self._received = np.zeros(self.num_nodes, dtype=np.int64)

    @property
    def num_machines(self) -> int:
        return self.num_nodes

    def begin_round(self) -> None:
        if self._round_open:
            raise CommunicationError("previous round is still open")
        self._round_open = True
        self._sent[:] = 0
        self._received[:] = 0

    def end_round(self) -> None:
        if not self._round_open:
            raise CommunicationError("no round is open")
        round_load = int(max(self._sent.max(initial=0), self._received.max(initial=0)))
        self._note_round_load(round_load)
        self.ledger.record(load=round_load, bits=int(self._sent.sum()))
        self._round_open = False

    def send(self, source: int, destination: int, payload: Payload) -> Payload:
        """Record one point-to-point message this round; returns the delivery."""
        if not self._round_open:
            raise CommunicationError("messages may only be sent inside an open round")
        for machine_id in (source, destination):
            if not 0 <= machine_id < self.num_nodes:
                raise CommunicationError(f"machine {machine_id} does not exist")
        bits = self.measure(payload)
        if bits < 0:
            raise ValueError("bits must be non-negative")
        self._sent[source] += bits
        self._received[destination] += bits
        self._note_message(bits)
        return self.transport.deliver(payload)

    # ------------------------------------------------------------------ #
    # Collective primitives (Goodrich et al. [23])
    # ------------------------------------------------------------------ #

    def broadcast_tree(self, root: int, payload: Payload, fanout: int) -> int:
        """Fan-out broadcast from ``root``; returns the rounds used."""
        if fanout < 2:
            raise ValueError("fanout must be >= 2")
        informed = {root}
        rounds_used = 0
        while len(informed) < self.num_nodes:
            self.begin_round()
            newly_informed: set[int] = set()
            targets = [m for m in range(self.num_nodes) if m not in informed]
            slots = iter(targets)
            for sender in sorted(informed):
                for _ in range(fanout):
                    try:
                        target = next(slots)
                    except StopIteration:
                        break
                    self.send(sender, target, payload)
                    newly_informed.add(target)
            informed |= newly_informed
            self.end_round()
            rounds_used += 1
        return rounds_used

    def aggregate_tree(
        self,
        root: int,
        payload: Payload,
        fanout: int,
        values: Optional[Sequence[Any]] = None,
        combine: Optional[Callable[[Any, Any], Any]] = None,
    ) -> tuple[int, Any]:
        """Converge-cast one fixed-size value per machine into ``root``.

        ``payload`` is the per-edge message (its measured size is charged on
        every tree edge); ``values``/``combine`` optionally compute the
        actual aggregate.  Returns ``(rounds_used, aggregate)``.
        """
        if fanout < 2:
            raise ValueError("fanout must be >= 2")
        active = list(range(self.num_nodes))
        partials = list(values) if values is not None else [None] * self.num_nodes
        rounds_used = 0
        while len(active) > 1:
            self.begin_round()
            survivors: list[int] = []
            for start in range(0, len(active), fanout):
                group = active[start : start + fanout]
                head = group[0] if root not in group else root
                for member in group:
                    if member == head:
                        continue
                    self.send(member, head, payload)
                    if combine is not None:
                        partials[head] = combine(partials[head], partials[member])
                survivors.append(head)
            active = survivors
            self.end_round()
            rounds_used += 1
        final_holder = active[0]
        if final_holder != root and self.num_nodes > 1:
            self.begin_round()
            self.send(final_holder, root, payload)
            if values is not None:
                partials[root] = partials[final_holder]
            self.end_round()
            rounds_used += 1
        return rounds_used, partials[root] if values is not None else None


class StreamTopology(Topology):
    """The single-reader stream: one node, no messages, one round per pass."""

    def __init__(
        self,
        num_items: int,
        order: Optional[Sequence[int]] = None,
        transport: Optional[Transport] = None,
        cost_model: Optional[BitCostModel] = None,
    ) -> None:
        super().__init__(1, transport, cost_model)
        if num_items < 0:
            raise ValueError("num_items must be non-negative")
        if order is None:
            self._order = np.arange(num_items, dtype=int)
        else:
            self._order = np.asarray(order, dtype=int)
            if self._order.size != num_items:
                raise ValueError(
                    f"order has {self._order.size} entries, expected {num_items}"
                )
            if num_items and (
                self._order.min() < 0
                or self._order.max() >= num_items
                or np.unique(self._order).size != num_items
            ):
                raise ValueError("order must be a permutation of range(num_items)")

    @property
    def num_items(self) -> int:
        return int(self._order.size)

    @property
    def passes(self) -> int:
        return self.ledger.num_rounds

    def order(self) -> np.ndarray:
        """The arrival order (a copy)."""
        return self._order.copy()

    def record_pass(self) -> None:
        """Account one pass over the stream (no bits move; items are read)."""
        self.ledger.record(items=self.num_items, bits=0, load=0)

    def run_pass(self, fn: Callable[..., Any], *args: Any) -> Any:
        """Run one full pass as a node task on the (single) reader node."""
        self.record_pass()
        return self.run_on(0, fn, *args)

    @staticmethod
    def iter_chunks(order: np.ndarray, chunk_size: int) -> Iterator[np.ndarray]:
        """The stream order in bounded read-only chunks (shared helper)."""
        if chunk_size < 1:
            raise ValueError(f"chunk_size must be >= 1, got {chunk_size}")
        for start in range(0, order.size, chunk_size):
            chunk = order[start : start + chunk_size]
            chunk.flags.writeable = False
            yield chunk
