"""Zero-copy shipping of large constraint arrays over POSIX shared memory.

The process transports historically shipped the problem instance by pickling
it once **per worker**: at the xlarge tier (``n = 10^7``) that is hundreds of
megabytes serialized, piped, and privately copied ``max_workers`` times.
This module replaces the copies with one shared segment:

* :class:`SharedPackStore` (one per process, via :func:`store`) exports an
  object's large contiguous arrays into a single
  :class:`multiprocessing.shared_memory.SharedMemory` segment and returns a
  tiny picklable :class:`ShippedObject` handle — the object's pickle with
  every qualifying array replaced by a ``(segment, slot)`` reference.
* Unpickling a :class:`ShippedObject` (in a worker, or in the parent's
  degraded in-process fallback) maps the segment and reconstructs
  **read-only NumPy views** over the shared pages: every worker sees the
  same physical memory, and per-worker RSS stops scaling with the problem.
* Lifetime is refcounted by *owner tokens*: the fabric session that shipped
  the object always owns the segment, and an ambient pin
  (:func:`pinned_shm_owner`, installed by the API session) can extend it
  across solves.  The segment is unlinked the moment its owner set drains —
  session release, ``Session.close()`` — and an ``atexit`` sweep unlinks
  anything that survives, so a crashed worker can never leak a segment
  (workers only ever *attach*; the creating process owns the name).

Python 3.11's ``resource_tracker`` registers every segment it sees — in the
creator *and* in every attaching process — and unlinks them when the first
of those processes exits (bpo-38119).  Segments are therefore opened and
unlinked with the tracker silenced (:func:`_tracker_silenced`); lifetime is
this module's job alone.
"""

from __future__ import annotations

import atexit
import io
import itertools
import os
import pickle
import threading
import weakref
from contextlib import contextmanager
from contextvars import ContextVar
from typing import Any, Iterator, Optional

import numpy as np

__all__ = [
    "SharedPackStore",
    "ShippedObject",
    "store",
    "shared_memory_supported",
    "pinned_shm_owner",
    "new_pin_token",
    "leaked_segments",
]

#: Prefix of every segment this module creates (``/dev/shm/<prefix>...``).
SEGMENT_PREFIX = "repro_shm_"

#: Arrays below this many bytes ride the ordinary pickle (framing a shared
#: segment around a few hundred bytes costs more than it saves).
MIN_SHARED_BYTES = int(os.environ.get("REPRO_SHM_MIN_BYTES", 4096))

#: Per-array alignment inside a segment (cache-line friendly, SIMD safe).
_ALIGN = 64

_SEGMENT_COUNTER = itertools.count()
_PIN_COUNTER = itertools.count()


_TRACKER_LOCK = threading.Lock()


@contextmanager
def _tracker_silenced() -> Iterator[None]:
    """No-op the resource tracker for segments opened/unlinked in the block.

    Python 3.11 registers a segment in *every* process that opens it and the
    tracker's cache is a set, so balanced create/attach/unlink sequences
    across parent + workers still produce spurious unregister ``KeyError``
    tracebacks — and, worse, the tracker unlinks still-live segments when
    the first registered process exits (bpo-38119).  Lifetime is this
    module's job, so our own segments are simply never told to the tracker.
    """
    try:  # pragma: no cover - tracker internals vary across minor versions
        from multiprocessing import resource_tracker
    except Exception:
        yield
        return
    with _TRACKER_LOCK:
        original_register = resource_tracker.register
        original_unregister = resource_tracker.unregister

        def register(name: str, rtype: str) -> None:
            if rtype != "shared_memory":
                original_register(name, rtype)

        def unregister(name: str, rtype: str) -> None:
            if rtype != "shared_memory":
                original_unregister(name, rtype)

        resource_tracker.register = register
        resource_tracker.unregister = unregister
        try:
            yield
        finally:
            resource_tracker.register = original_register
            resource_tracker.unregister = original_unregister


def _open_segment(name: str, create: bool, size: int = 0):
    from multiprocessing import shared_memory

    with _tracker_silenced():
        if create:
            return shared_memory.SharedMemory(name=name, create=True, size=max(1, size))
        return shared_memory.SharedMemory(name=name)


def _unlink_segment(segment) -> None:
    """Close + unlink one segment, swallowing already-gone/still-viewed races."""
    try:
        segment.close()
    except BufferError:  # pragma: no cover - a local view still pins the map
        pass
    try:
        with _tracker_silenced():
            segment.unlink()
    except FileNotFoundError:  # pragma: no cover - already swept
        pass


_SUPPORTED: Optional[bool] = None


def shared_memory_supported() -> bool:
    """Whether this platform can create, reattach, and unlink a segment."""
    global _SUPPORTED
    if _SUPPORTED is None:
        probe_name = f"{SEGMENT_PREFIX}probe_{os.getpid()}"
        try:
            seg = _open_segment(probe_name, create=True, size=16)
            seg.buf[:4] = b"ok!\x00"
            peer = _open_segment(probe_name, create=False)
            ok = bytes(peer.buf[:4]) == b"ok!\x00"
            peer.close()
            _unlink_segment(seg)
            _SUPPORTED = bool(ok)
        except Exception:
            _SUPPORTED = False
    return _SUPPORTED


def _qualifies(value: Any) -> bool:
    return (
        isinstance(value, np.ndarray)
        and value.dtype.kind in "fiub"
        and value.flags["C_CONTIGUOUS"]
        and value.nbytes >= MIN_SHARED_BYTES
    )


# --------------------------------------------------------------------- #
# Export: pickle with large arrays spilled into one shared segment
# --------------------------------------------------------------------- #


class _CollectingPickler(pickle.Pickler):
    """Pickles an object while diverting qualifying arrays to segment slots.

    The same array *object* appearing several times in the graph (e.g. an
    ``LinearProgram.a`` that is also its pack's ``rows``) maps to one slot,
    and the attach side returns one shared view for both references — the
    aliasing survives the wire.
    """

    def __init__(self, buffer: io.BytesIO) -> None:
        super().__init__(buffer, protocol=pickle.HIGHEST_PROTOCOL)
        self.arrays: list[np.ndarray] = []
        self._slots: dict[int, int] = {}

    def persistent_id(self, obj: Any) -> Any:
        if not _qualifies(obj):
            return None
        slot = self._slots.get(id(obj))
        if slot is None:
            slot = len(self.arrays)
            self._slots[id(obj)] = slot
            self.arrays.append(obj)
        return ("repro-shm", slot)


class _AttachUnpickler(pickle.Unpickler):
    def __init__(self, buffer: io.BytesIO, attachment: "_Attachment") -> None:
        super().__init__(buffer)
        self._attachment = attachment

    def persistent_load(self, pid: Any) -> Any:
        tag, slot = pid
        if tag != "repro-shm":  # pragma: no cover - foreign persistent id
            raise pickle.UnpicklingError(f"unknown persistent id {pid!r}")
        return self._attachment.view(int(slot))


class _Attachment:
    """One mapped segment plus its reconstructed (cached) read-only views."""

    __slots__ = ("name", "segment", "directory", "refs", "_views")

    def __init__(self, name: str, directory: tuple) -> None:
        self.name = name
        self.segment = _open_segment(name, create=False)
        self.directory = directory
        self.refs = 0
        self._views: dict[int, np.ndarray] = {}

    def view(self, slot: int) -> np.ndarray:
        cached = self._views.get(slot)
        if cached is None:
            offset, dtype_str, shape = self.directory[slot]
            cached = np.ndarray(
                shape, dtype=np.dtype(dtype_str), buffer=self.segment.buf, offset=offset
            )
            cached.flags.writeable = False
            self._views[slot] = cached
        return cached

    def close(self) -> bool:
        """Drop the mapping; ``False`` when live views still pin the buffer."""
        self._views.clear()
        try:
            self.segment.close()
        except BufferError:
            return False
        return True


#: Segments this process has *attached* (worker side, or the parent's
#: degraded fallback), keyed by name.  Refcounts are per tracked session.
_ATTACHMENTS: dict[str, _Attachment] = {}
_DEFERRED_CLOSES: set[str] = set()
_ATTACH_LOCK = threading.Lock()
_TRACK_TARGETS: list[set[str]] = []


def _attach_shipped(name: Optional[str], directory: tuple, payload: bytes) -> Any:
    """Reconstruct a shipped object (this is ``ShippedObject.__reduce__``)."""
    if name is None:
        return pickle.loads(payload)
    with _ATTACH_LOCK:
        attachment = _ATTACHMENTS.get(name)
        if attachment is None:
            attachment = _Attachment(name, directory)
            _ATTACHMENTS[name] = attachment
        for target in _TRACK_TARGETS:
            target.add(name)
    return _AttachUnpickler(io.BytesIO(payload), attachment).load()


@contextmanager
def track_attachments() -> Iterator[set[str]]:
    """Collect the names of every segment attached inside the block."""
    names: set[str] = set()
    with _ATTACH_LOCK:
        _TRACK_TARGETS.append(names)
    try:
        yield names
    finally:
        with _ATTACH_LOCK:
            _TRACK_TARGETS.remove(names)


def retain_attachments(names: set[str]) -> None:
    """Bump the attach refcount (one session now depends on these maps)."""
    with _ATTACH_LOCK:
        for name in names:
            attachment = _ATTACHMENTS.get(name)
            if attachment is not None:
                attachment.refs += 1


def release_attachments(names: set[str]) -> None:
    """Drop one session's refs; unmap segments nobody references anymore."""
    with _ATTACH_LOCK:
        for name in names:
            attachment = _ATTACHMENTS.get(name)
            if attachment is None:
                continue
            attachment.refs -= 1
            if attachment.refs <= 0:
                del _ATTACHMENTS[name]
                if not attachment.close():
                    # Live views outside the state dict still pin the buffer;
                    # the mapping is freed when they are collected (the name
                    # itself is the creator's to unlink, so nothing leaks).
                    _DEFERRED_CLOSES.add(name)


class ShippedObject:
    """A picklable zero-copy handle: tiny payload + shared-segment reference.

    Pickling a :class:`ShippedObject` writes only the payload bytes and the
    segment name — the supervisor's journal therefore records a *reference*
    to the shared pages, never a copy.  Unpickling (anywhere in the same
    machine, while the creator keeps the segment alive) re-maps the segment
    and rebuilds the object with read-only views.
    """

    __slots__ = ("segment_name", "directory", "payload", "nbytes")

    def __init__(
        self,
        segment_name: Optional[str],
        directory: tuple,
        payload: bytes,
        nbytes: int = 0,
    ) -> None:
        self.segment_name = segment_name
        self.directory = directory
        self.payload = payload
        self.nbytes = nbytes

    def __reduce__(self):
        return (_attach_shipped, (self.segment_name, self.directory, self.payload))

    def materialize(self) -> Any:
        """The reconstructed object (attaching in *this* process)."""
        return _attach_shipped(self.segment_name, self.directory, self.payload)


class _Export:
    __slots__ = ("name", "segment", "shipped", "owners", "nbytes")

    def __init__(self, name, segment, shipped, nbytes) -> None:
        self.name = name
        self.segment = segment
        self.shipped = shipped
        self.owners: set[str] = set()
        self.nbytes = nbytes


class SharedPackStore:
    """Creator-side registry of exported segments (one per process).

    ``export(value, owner)`` spills ``value``'s large arrays into one fresh
    segment (or reuses a live export of the *same object*, adding ``owner``
    to its refcount) and returns the :class:`ShippedObject` handle.
    ``release_owner(owner)`` drops that owner everywhere and unlinks every
    segment whose owner set drained.  All methods are thread-safe.
    """

    def __init__(self) -> None:
        self._exports: dict[str, _Export] = {}
        self._by_object: dict[int, str] = {}
        # The weakrefs themselves must stay alive for their eviction
        # callbacks to fire (a collected weakref never calls back).
        self._refs: dict[int, weakref.ref] = {}
        self._lock = threading.Lock()

    # -- export ---------------------------------------------------------- #

    def export(self, value: Any, owner: str) -> Any:
        """A :class:`ShippedObject` for ``value`` (or ``value`` unchanged).

        Objects without a single qualifying array are returned as-is: no
        empty segments, and the caller's ordinary pickle path applies.
        """
        owners = {owner}
        pin = _PIN_OWNER.get()
        if pin is not None:
            owners.add(pin)
        with self._lock:
            name = self._by_object.get(id(value))
            export = self._exports.get(name) if name is not None else None
        if export is not None:
            with self._lock:
                export.owners.update(owners)
            return export.shipped
        prepare = getattr(value, "prepare_for_export", None)
        if prepare is not None:
            # Materialise derived constraint-plane arrays (the pack, above
            # all) *before* pickling, so workers map them instead of each
            # rebuilding a private copy.
            prepare()
        buffer = io.BytesIO()
        pickler = _CollectingPickler(buffer)
        pickler.dump(value)
        if not pickler.arrays:
            return value
        offsets = []
        total = 0
        for arr in pickler.arrays:
            total = (total + _ALIGN - 1) // _ALIGN * _ALIGN
            offsets.append(total)
            total += arr.nbytes
        segment = self._create_segment(total)
        directory = []
        for arr, offset in zip(pickler.arrays, offsets):
            dest = np.ndarray(arr.shape, dtype=arr.dtype, buffer=segment.buf, offset=offset)
            dest[...] = arr
            del dest
            directory.append((offset, arr.dtype.str, arr.shape))
        shipped = ShippedObject(
            segment.name, tuple(directory), buffer.getvalue(), nbytes=total
        )
        export = _Export(segment.name, segment, shipped, total)
        export.owners.update(owners)
        with self._lock:
            self._exports[segment.name] = export
            try:
                ref = weakref.ref(value, self._make_evictor(id(value), segment.name))
            except TypeError:
                ref = None
            if ref is not None:
                self._by_object[id(value)] = segment.name
                self._refs[id(value)] = ref
        return shipped

    def _make_evictor(self, obj_id: int, name: str):
        def _evict(_ref: Any) -> None:
            with self._lock:
                if self._by_object.get(obj_id) == name:
                    del self._by_object[obj_id]
                    self._refs.pop(obj_id, None)

        return _evict

    def _create_segment(self, size: int):
        while True:
            name = f"{SEGMENT_PREFIX}{os.getpid()}_{next(_SEGMENT_COUNTER)}"
            try:
                return _open_segment(name, create=True, size=size)
            except FileExistsError:  # pragma: no cover - pid reuse
                continue

    # -- lifetime -------------------------------------------------------- #

    def adopt(self, segment_name: str, owner: str) -> None:
        """Add one owner to a live export (no-op for unknown segments)."""
        with self._lock:
            export = self._exports.get(segment_name)
            if export is not None:
                export.owners.add(owner)

    def release_owner(self, owner: str) -> None:
        """Drop ``owner`` everywhere; unlink exports left with no owner."""
        doomed = []
        with self._lock:
            for name, export in list(self._exports.items()):
                export.owners.discard(owner)
                if not export.owners:
                    doomed.append(self._exports.pop(name))
            if doomed:
                names = {export.name for export in doomed}
                for obj_id, name in list(self._by_object.items()):
                    if name in names:
                        del self._by_object[obj_id]
                        self._refs.pop(obj_id, None)
        for export in doomed:
            self._unlink(export)

    @staticmethod
    def _unlink(export: _Export) -> None:
        _unlink_segment(export.segment)

    def unlink_all(self) -> None:
        """Unlink every export regardless of owners (the ``atexit`` sweep)."""
        with self._lock:
            doomed = list(self._exports.values())
            self._exports.clear()
            self._by_object.clear()
            self._refs.clear()
        for export in doomed:
            self._unlink(export)

    # -- introspection --------------------------------------------------- #

    def segment_names(self) -> list[str]:
        with self._lock:
            return sorted(self._exports)

    def owners_of(self, segment_name: str) -> set[str]:
        with self._lock:
            export = self._exports.get(segment_name)
            return set(export.owners) if export is not None else set()


_STORE = SharedPackStore()


def store() -> SharedPackStore:
    """The process-wide :class:`SharedPackStore`."""
    return _STORE


# --------------------------------------------------------------------- #
# Ambient pins (the API session's cross-solve lifetime)
# --------------------------------------------------------------------- #

_PIN_OWNER: ContextVar[Optional[str]] = ContextVar("repro_shm_pin", default=None)


def new_pin_token() -> str:
    """A fresh owner token for a long-lived pin (one per API session)."""
    return f"pin{next(_PIN_COUNTER)}"


@contextmanager
def pinned_shm_owner(token: Optional[str]) -> Iterator[None]:
    """Co-own every segment exported inside the block under ``token``.

    The API session wraps each solve with its own token: the problem's
    segment then survives the per-solve fabric session release and is
    reused by the next solve (the export cache recognises the object), with
    the deterministic unlink moved to ``Session.close()`` /
    :func:`SharedPackStore.release_owner`.  ``None`` pins nothing.
    """
    if token is None:
        yield
        return
    reset = _PIN_OWNER.set(token)
    try:
        yield
    finally:
        _PIN_OWNER.reset(reset)


# --------------------------------------------------------------------- #
# Leak surface
# --------------------------------------------------------------------- #


def leaked_segments() -> list[str]:
    """``repro_shm_*`` names still present on the system (tests gate on []).

    Reads ``/dev/shm`` where it exists (Linux); elsewhere falls back to this
    process's own live-export registry.
    """
    shm_dir = "/dev/shm"
    if os.path.isdir(shm_dir):
        try:
            return sorted(
                entry
                for entry in os.listdir(shm_dir)
                if entry.startswith(SEGMENT_PREFIX)
            )
        except OSError:  # pragma: no cover - permission oddities
            pass
    return _STORE.segment_names()


@atexit.register
def _sweep() -> None:  # pragma: no cover - interpreter shutdown
    _STORE.unlink_all()
    with _ATTACH_LOCK:
        attachments = list(_ATTACHMENTS.values())
        _ATTACHMENTS.clear()
        _DEFERRED_CLOSES.clear()
    for attachment in attachments:
        attachment.close()
