"""A pickle-free binary codec for the process transports' hot wire frames.

Task arguments, task results, and node-init states are overwhelmingly built
from a small vocabulary: ``None``/booleans/ints/floats, NumPy scalars and
arrays, strings, tuples/lists/dicts, and fabric :class:`~repro.fabric.payload.Payload`
objects (which already define a canonical wire form).  This codec frames
exactly that vocabulary as length-prefixed ``struct`` + raw-buffer records —
no pickle machinery on the round-trip hot path — and keeps pickle as the
explicit fallback tag for everything else (RNG generators, dataclasses,
problem-specific values), so arbitrary state still travels correctly.

Bit-identity is structural: floats and arrays are transcribed from their raw
buffers (`tobytes`/`frombuffer`), never reformatted, so a decoded value is
byte-for-byte the encoded one.  NumPy scalar *types* are preserved for the
dominant ``float64``/``int64`` cases (a task that returns ``np.float64``
must not observe a plain ``float`` after the wire).

``dumps`` prefixes a magic marker; ``loads`` falls back to ``pickle.loads``
for unmarked data, so journaled frames from either encoding replay through
one entry point.

Stream framing
--------------
Pipes (``multiprocessing.Connection``) preserve message boundaries, but raw
byte streams — TCP sockets above all — deliver *fragments*: one ``recv`` may
return half a frame, and a peer may die mid-frame.  :func:`read_exactly`,
:func:`frame`, and :func:`read_frame` give every stream consumer (the
cluster's socket protocol, file-backed journals) one explicit length-prefixed
framing discipline: a frame is a 4-byte big-endian length followed by exactly
that many payload bytes.  A stream that ends cleanly *between* frames raises
``EOFError``; one that ends *inside* a frame (or decodes past the end of its
buffer) raises :class:`TruncatedFrameError`, never a silently-short value.
"""

from __future__ import annotations

import pickle
import struct
from typing import Any, Callable

import numpy as np

from .payload import Payload, RawBits, decode_payload

__all__ = [
    "dumps",
    "loads",
    "MAGIC",
    "TruncatedFrameError",
    "read_exactly",
    "frame",
    "read_frame",
    "MAX_FRAME_BYTES",
]

#: Frame marker: anything not starting with this is treated as a pickle.
#: (``\x93`` is not a printable ASCII byte and differs from pickle's
#: ``PROTO`` opcode ``\x80``, so the dispatch is unambiguous.)
MAGIC = b"\x93RW1"

_T_NONE = b"N"
_T_TRUE = b"T"
_T_FALSE = b"F"
_T_INT = b"i"  # int fitting int64
_T_FLOAT = b"f"  # python float
_T_NPF64 = b"g"  # numpy.float64 scalar
_T_NPI64 = b"j"  # numpy.int64 scalar
_T_STR = b"s"
_T_BYTES = b"b"
_T_ARRAY = b"a"
_T_TUPLE = b"t"
_T_LIST = b"l"
_T_DICT = b"d"
_T_PAYLOAD = b"p"
_T_PICKLE = b"P"

_I64_MIN = -(2**63)
_I64_MAX = 2**63 - 1

#: Hard ceiling on one stream frame (a corrupt length prefix must not make a
#: reader try to buffer gigabytes before failing).
MAX_FRAME_BYTES = 1 << 31


class TruncatedFrameError(ValueError):
    """A wire frame ended (or claimed more bytes) than the stream delivered."""

_pack_q = struct.Struct("<q").pack
_pack_d = struct.Struct("<d").pack
_pack_I = struct.Struct("<I").pack
_unpack_q = struct.Struct("<q").unpack_from
_unpack_d = struct.Struct("<d").unpack_from
_unpack_I = struct.Struct("<I").unpack_from


def _encode(obj: Any, out: bytearray) -> None:
    if obj is None:
        out += _T_NONE
        return
    kind = type(obj)
    if kind is bool:
        out += _T_TRUE if obj else _T_FALSE
        return
    if kind is np.float64:
        out += _T_NPF64
        out += _pack_d(float(obj))
        return
    if kind is float:
        out += _T_FLOAT
        out += _pack_d(obj)
        return
    if kind is np.int64:
        out += _T_NPI64
        out += _pack_q(int(obj))
        return
    if kind is int:
        if _I64_MIN <= obj <= _I64_MAX:
            out += _T_INT
            out += _pack_q(obj)
        else:
            _encode_pickle(obj, out)
        return
    if kind is str:
        raw = obj.encode("utf-8")
        out += _T_STR
        out += _pack_I(len(raw))
        out += raw
        return
    if kind is bytes:
        out += _T_BYTES
        out += _pack_I(len(obj))
        out += obj
        return
    if isinstance(obj, np.ndarray):
        if obj.dtype.kind not in "fiub" or obj.dtype.hasobject:
            _encode_pickle(obj, out)
            return
        dtype_str = obj.dtype.str.encode("ascii")
        out += _T_ARRAY
        out += bytes([len(dtype_str), obj.ndim])
        for dim in obj.shape:
            out += _pack_q(dim)
        out += dtype_str
        out += obj.tobytes()  # C-order raw buffer: exact bits, any layout
        return
    if kind is tuple:
        out += _T_TUPLE
        out += _pack_I(len(obj))
        for item in obj:
            _encode(item, out)
        return
    if kind is list:
        out += _T_LIST
        out += _pack_I(len(obj))
        for item in obj:
            _encode(item, out)
        return
    if kind is dict:
        out += _T_DICT
        out += _pack_I(len(obj))
        for key, value in obj.items():
            _encode(key, out)
            _encode(value, out)
        return
    if isinstance(obj, Payload) and not isinstance(obj, RawBits):
        # RawBits carries an opaque payload its wire form drops; pickling it
        # keeps the legacy shims' semantics intact.
        raw = obj.to_bytes()
        out += _T_PAYLOAD
        out += _pack_I(len(raw))
        out += raw
        return
    _encode_pickle(obj, out)


def _encode_pickle(obj: Any, out: bytearray) -> None:
    raw = pickle.dumps(obj, protocol=pickle.HIGHEST_PROTOCOL)
    out += _T_PICKLE
    out += _pack_I(len(raw))
    out += raw


def _need(data: bytes, offset: int, count: int) -> None:
    """Fail loudly — not with a silently-short value — on truncated input."""
    if offset + count > len(data):
        raise TruncatedFrameError(
            f"truncated wire frame: needed {count} byte(s) at offset {offset}, "
            f"only {len(data) - offset} remain"
        )


def _read_length(data: bytes, offset: int) -> tuple[int, int]:
    _need(data, offset, 4)
    (length,) = _unpack_I(data, offset)
    return length, offset + 4


def _decode(data: bytes, offset: int) -> tuple[Any, int]:
    _need(data, offset, 1)
    tag = data[offset : offset + 1]
    offset += 1
    if tag == _T_NONE:
        return None, offset
    if tag == _T_TRUE:
        return True, offset
    if tag == _T_FALSE:
        return False, offset
    if tag == _T_INT:
        _need(data, offset, 8)
        return _unpack_q(data, offset)[0], offset + 8
    if tag == _T_FLOAT:
        _need(data, offset, 8)
        return _unpack_d(data, offset)[0], offset + 8
    if tag == _T_NPF64:
        _need(data, offset, 8)
        return np.float64(_unpack_d(data, offset)[0]), offset + 8
    if tag == _T_NPI64:
        _need(data, offset, 8)
        return np.int64(_unpack_q(data, offset)[0]), offset + 8
    if tag == _T_STR:
        length, offset = _read_length(data, offset)
        _need(data, offset, length)
        return data[offset : offset + length].decode("utf-8"), offset + length
    if tag == _T_BYTES:
        length, offset = _read_length(data, offset)
        _need(data, offset, length)
        return bytes(data[offset : offset + length]), offset + length
    if tag == _T_ARRAY:
        _need(data, offset, 2)
        dtype_len = data[offset]
        ndim = data[offset + 1]
        offset += 2
        shape = []
        for _ in range(ndim):
            _need(data, offset, 8)
            shape.append(_unpack_q(data, offset)[0])
            offset += 8
        _need(data, offset, dtype_len)
        dtype = np.dtype(data[offset : offset + dtype_len].decode("ascii"))
        offset += dtype_len
        count = 1
        for dim in shape:
            count *= dim
        _need(data, offset, count * dtype.itemsize)
        arr = np.frombuffer(data, dtype=dtype, count=count, offset=offset)
        offset += count * dtype.itemsize
        # .copy() makes the result writable and owner of its buffer, exactly
        # like an unpickled array.
        return arr.reshape(shape).copy(), offset
    if tag == _T_TUPLE or tag == _T_LIST:
        length, offset = _read_length(data, offset)
        items = []
        for _ in range(length):
            item, offset = _decode(data, offset)
            items.append(item)
        return (tuple(items) if tag == _T_TUPLE else items), offset
    if tag == _T_DICT:
        length, offset = _read_length(data, offset)
        mapping = {}
        for _ in range(length):
            key, offset = _decode(data, offset)
            value, offset = _decode(data, offset)
            mapping[key] = value
        return mapping, offset
    if tag == _T_PAYLOAD:
        length, offset = _read_length(data, offset)
        _need(data, offset, length)
        return decode_payload(memoryview(data)[offset : offset + length]), offset + length
    if tag == _T_PICKLE:
        length, offset = _read_length(data, offset)
        _need(data, offset, length)
        return pickle.loads(data[offset : offset + length]), offset + length
    raise ValueError(f"unknown wire tag {tag!r} at offset {offset - 1}")


def dumps(obj: Any) -> bytes:
    """Encode ``obj`` into a marked, pickle-free wire frame."""
    out = bytearray(MAGIC)
    _encode(obj, out)
    return bytes(out)


def loads(data: bytes) -> Any:
    """Decode a :func:`dumps` frame; plain pickles pass through unchanged.

    Truncated or short-delivered frames raise :class:`TruncatedFrameError`
    (never a silently-short string/array): socket streams deliver fragments,
    and a reader that handed a partial buffer to ``loads`` must hear about
    it explicitly.
    """
    if data[: len(MAGIC)] == MAGIC:
        obj, _end = _decode(data, len(MAGIC))
        return obj
    return pickle.loads(data)


# --------------------------------------------------------------------- #
# Stream framing: explicit partial-read handling for sockets and files
# --------------------------------------------------------------------- #

_FRAME_HEADER = struct.Struct("!I")  # big-endian frame length


def read_exactly(recv: Callable[[int], bytes], count: int) -> bytes:
    """Read exactly ``count`` bytes from a fragmenting stream.

    ``recv`` is any ``recv(n) -> bytes`` / ``read(n) -> bytes`` callable
    (``socket.recv``, ``BufferedReader.read``): it may return *fewer* bytes
    than asked, and returns ``b""`` at end-of-stream.  A stream that ends at
    byte 0 raises ``EOFError`` (clean close between frames); one that ends
    after delivering a fragment raises :class:`TruncatedFrameError`.
    """
    if count == 0:
        return b""
    chunks: list[bytes] = []
    remaining = count
    while remaining > 0:
        chunk = recv(remaining)
        if not chunk:
            if remaining == count:
                raise EOFError("stream closed")
            raise TruncatedFrameError(
                f"stream ended mid-frame: expected {count} byte(s), "
                f"got {count - remaining}"
            )
        chunks.append(chunk)
        remaining -= len(chunk)
    return chunks[0] if len(chunks) == 1 else b"".join(chunks)


def frame(payload: bytes) -> bytes:
    """Length-prefix one payload: 4-byte big-endian length + the bytes.

    The caller writes the returned buffer with an all-or-nothing primitive
    (``socket.sendall``, ``BufferedWriter.write``) — short *writes* are the
    sender's half of the framing contract.
    """
    if len(payload) > MAX_FRAME_BYTES:
        raise ValueError(
            f"frame of {len(payload)} bytes exceeds MAX_FRAME_BYTES "
            f"({MAX_FRAME_BYTES})"
        )
    return _FRAME_HEADER.pack(len(payload)) + payload


def read_frame(recv: Callable[[int], bytes]) -> bytes:
    """Read one :func:`frame`-framed payload from a fragmenting stream.

    Raises ``EOFError`` on a clean close between frames,
    :class:`TruncatedFrameError` on a mid-frame close, and ``ValueError`` on
    a length prefix beyond :data:`MAX_FRAME_BYTES` (corrupt stream).
    """
    header = read_exactly(recv, _FRAME_HEADER.size)
    (length,) = _FRAME_HEADER.unpack(header)
    if length > MAX_FRAME_BYTES:
        raise ValueError(
            f"frame header declares {length} bytes, beyond MAX_FRAME_BYTES "
            f"({MAX_FRAME_BYTES}); stream is corrupt or desynchronised"
        )
    try:
        return read_exactly(recv, length)
    except EOFError as exc:
        # The header arrived but the payload did not even start: the peer
        # died between the two, which is still a truncated frame.
        raise TruncatedFrameError(
            f"stream ended after frame header: expected {length} payload "
            "byte(s), got 0"
        ) from exc
