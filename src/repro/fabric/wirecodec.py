"""A pickle-free binary codec for the process transports' hot wire frames.

Task arguments, task results, and node-init states are overwhelmingly built
from a small vocabulary: ``None``/booleans/ints/floats, NumPy scalars and
arrays, strings, tuples/lists/dicts, and fabric :class:`~repro.fabric.payload.Payload`
objects (which already define a canonical wire form).  This codec frames
exactly that vocabulary as length-prefixed ``struct`` + raw-buffer records —
no pickle machinery on the round-trip hot path — and keeps pickle as the
explicit fallback tag for everything else (RNG generators, dataclasses,
problem-specific values), so arbitrary state still travels correctly.

Bit-identity is structural: floats and arrays are transcribed from their raw
buffers (`tobytes`/`frombuffer`), never reformatted, so a decoded value is
byte-for-byte the encoded one.  NumPy scalar *types* are preserved for the
dominant ``float64``/``int64`` cases (a task that returns ``np.float64``
must not observe a plain ``float`` after the wire).

``dumps`` prefixes a magic marker; ``loads`` falls back to ``pickle.loads``
for unmarked data, so journaled frames from either encoding replay through
one entry point.
"""

from __future__ import annotations

import pickle
import struct
from typing import Any

import numpy as np

from .payload import Payload, RawBits, decode_payload

__all__ = ["dumps", "loads", "MAGIC"]

#: Frame marker: anything not starting with this is treated as a pickle.
#: (``\x93`` is not a printable ASCII byte and differs from pickle's
#: ``PROTO`` opcode ``\x80``, so the dispatch is unambiguous.)
MAGIC = b"\x93RW1"

_T_NONE = b"N"
_T_TRUE = b"T"
_T_FALSE = b"F"
_T_INT = b"i"  # int fitting int64
_T_FLOAT = b"f"  # python float
_T_NPF64 = b"g"  # numpy.float64 scalar
_T_NPI64 = b"j"  # numpy.int64 scalar
_T_STR = b"s"
_T_BYTES = b"b"
_T_ARRAY = b"a"
_T_TUPLE = b"t"
_T_LIST = b"l"
_T_DICT = b"d"
_T_PAYLOAD = b"p"
_T_PICKLE = b"P"

_I64_MIN = -(2**63)
_I64_MAX = 2**63 - 1

_pack_q = struct.Struct("<q").pack
_pack_d = struct.Struct("<d").pack
_pack_I = struct.Struct("<I").pack
_unpack_q = struct.Struct("<q").unpack_from
_unpack_d = struct.Struct("<d").unpack_from
_unpack_I = struct.Struct("<I").unpack_from


def _encode(obj: Any, out: bytearray) -> None:
    if obj is None:
        out += _T_NONE
        return
    kind = type(obj)
    if kind is bool:
        out += _T_TRUE if obj else _T_FALSE
        return
    if kind is np.float64:
        out += _T_NPF64
        out += _pack_d(float(obj))
        return
    if kind is float:
        out += _T_FLOAT
        out += _pack_d(obj)
        return
    if kind is np.int64:
        out += _T_NPI64
        out += _pack_q(int(obj))
        return
    if kind is int:
        if _I64_MIN <= obj <= _I64_MAX:
            out += _T_INT
            out += _pack_q(obj)
        else:
            _encode_pickle(obj, out)
        return
    if kind is str:
        raw = obj.encode("utf-8")
        out += _T_STR
        out += _pack_I(len(raw))
        out += raw
        return
    if kind is bytes:
        out += _T_BYTES
        out += _pack_I(len(obj))
        out += obj
        return
    if isinstance(obj, np.ndarray):
        if obj.dtype.kind not in "fiub" or obj.dtype.hasobject:
            _encode_pickle(obj, out)
            return
        dtype_str = obj.dtype.str.encode("ascii")
        out += _T_ARRAY
        out += bytes([len(dtype_str), obj.ndim])
        for dim in obj.shape:
            out += _pack_q(dim)
        out += dtype_str
        out += obj.tobytes()  # C-order raw buffer: exact bits, any layout
        return
    if kind is tuple:
        out += _T_TUPLE
        out += _pack_I(len(obj))
        for item in obj:
            _encode(item, out)
        return
    if kind is list:
        out += _T_LIST
        out += _pack_I(len(obj))
        for item in obj:
            _encode(item, out)
        return
    if kind is dict:
        out += _T_DICT
        out += _pack_I(len(obj))
        for key, value in obj.items():
            _encode(key, out)
            _encode(value, out)
        return
    if isinstance(obj, Payload) and not isinstance(obj, RawBits):
        # RawBits carries an opaque payload its wire form drops; pickling it
        # keeps the legacy shims' semantics intact.
        raw = obj.to_bytes()
        out += _T_PAYLOAD
        out += _pack_I(len(raw))
        out += raw
        return
    _encode_pickle(obj, out)


def _encode_pickle(obj: Any, out: bytearray) -> None:
    raw = pickle.dumps(obj, protocol=pickle.HIGHEST_PROTOCOL)
    out += _T_PICKLE
    out += _pack_I(len(raw))
    out += raw


def _decode(data: bytes, offset: int) -> tuple[Any, int]:
    tag = data[offset : offset + 1]
    offset += 1
    if tag == _T_NONE:
        return None, offset
    if tag == _T_TRUE:
        return True, offset
    if tag == _T_FALSE:
        return False, offset
    if tag == _T_INT:
        return _unpack_q(data, offset)[0], offset + 8
    if tag == _T_FLOAT:
        return _unpack_d(data, offset)[0], offset + 8
    if tag == _T_NPF64:
        return np.float64(_unpack_d(data, offset)[0]), offset + 8
    if tag == _T_NPI64:
        return np.int64(_unpack_q(data, offset)[0]), offset + 8
    if tag == _T_STR:
        (length,) = _unpack_I(data, offset)
        offset += 4
        return data[offset : offset + length].decode("utf-8"), offset + length
    if tag == _T_BYTES:
        (length,) = _unpack_I(data, offset)
        offset += 4
        return bytes(data[offset : offset + length]), offset + length
    if tag == _T_ARRAY:
        dtype_len = data[offset]
        ndim = data[offset + 1]
        offset += 2
        shape = []
        for _ in range(ndim):
            shape.append(_unpack_q(data, offset)[0])
            offset += 8
        dtype = np.dtype(data[offset : offset + dtype_len].decode("ascii"))
        offset += dtype_len
        count = 1
        for dim in shape:
            count *= dim
        arr = np.frombuffer(data, dtype=dtype, count=count, offset=offset)
        offset += count * dtype.itemsize
        # .copy() makes the result writable and owner of its buffer, exactly
        # like an unpickled array.
        return arr.reshape(shape).copy(), offset
    if tag == _T_TUPLE or tag == _T_LIST:
        (length,) = _unpack_I(data, offset)
        offset += 4
        items = []
        for _ in range(length):
            item, offset = _decode(data, offset)
            items.append(item)
        return (tuple(items) if tag == _T_TUPLE else items), offset
    if tag == _T_DICT:
        (length,) = _unpack_I(data, offset)
        offset += 4
        mapping = {}
        for _ in range(length):
            key, offset = _decode(data, offset)
            value, offset = _decode(data, offset)
            mapping[key] = value
        return mapping, offset
    if tag == _T_PAYLOAD:
        (length,) = _unpack_I(data, offset)
        offset += 4
        return decode_payload(memoryview(data)[offset : offset + length]), offset + length
    if tag == _T_PICKLE:
        (length,) = _unpack_I(data, offset)
        offset += 4
        return pickle.loads(data[offset : offset + length]), offset + length
    raise ValueError(f"unknown wire tag {tag!r} at offset {offset - 1}")


def dumps(obj: Any) -> bytes:
    """Encode ``obj`` into a marked, pickle-free wire frame."""
    out = bytearray(MAGIC)
    _encode(obj, out)
    return bytes(out)


def loads(data: bytes) -> Any:
    """Decode a :func:`dumps` frame; plain pickles pass through unchanged."""
    if data[: len(MAGIC)] == MAGIC:
        obj, _end = _decode(data, len(MAGIC))
        return obj
    return pickle.loads(data)
