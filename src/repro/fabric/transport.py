"""Transports: where node-local computation runs and how payloads travel.

A :class:`Transport` owns the *execution substrate* of a topology's nodes
(coordinator sites, MPC machines, the stream reader).  Node state lives with
the transport, keyed by ``(session, node_id)``; a topology runs node-local
work by handing the transport a **top-level function** ``fn(state, *args) ->
(state, result)``.  Two implementations:

* :class:`InProcessTransport` — the default simulator: states in a dict,
  tasks run inline in deterministic node order, payloads delivered zero-copy.
* :class:`ProcessPoolTransport` — real OS processes: a fixed pool of worker
  processes (``spawn`` start method by default, so no inherited state), node
  states pinned to workers by ``node_id % workers``, task functions pickled
  by reference, and payloads delivered through their canonical wire bytes.

Both run the *same* task functions on the *same* per-node states (RNG
generators ship inside the state, so random streams advance identically),
which is why a solve is bit-identical across transports — the cross-transport
determinism tests pin this.

A module-level shared process pool (:func:`shared_process_transport`) lets
many solves reuse the same workers: states are namespaced per session, so
concurrent solves (e.g. ``solve_many(max_workers > 1)``) cannot observe each
other.
"""

from __future__ import annotations

import atexit
import itertools
import multiprocessing as mp
import pickle
import threading
import traceback
from contextlib import contextmanager
from contextvars import ContextVar
from dataclasses import dataclass
from typing import TYPE_CHECKING, Any, Callable, Iterator, Optional, Sequence

from ..core.exceptions import CommunicationError, TransportFailure
from ..resilience.faults import active_fault_plan, faulted_delivery
from . import shm, wirecodec
from .payload import Payload, decode_payload

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..api.config import TransportConfig

__all__ = [
    "SharedRef",
    "Transport",
    "InProcessTransport",
    "ProcessPoolTransport",
    "pinned_transport",
    "resolve_transport",
    "shared_process_transport",
]

_SESSION_COUNTER = itertools.count()


def new_session() -> str:
    """A process-unique session key for one solve's node states."""
    return f"s{next(_SESSION_COUNTER)}"


@dataclass(frozen=True)
class SharedRef:
    """Placeholder for a session-shared object inside a node state dict.

    Large read-only objects every node needs (the problem instance, above
    all) are installed once per session with ``Transport.init_shared`` and
    referenced from node states as ``SharedRef(key)``; the transport resolves
    the reference when the state is installed.  On the process transport the
    object is shipped once per *worker* instead of once per node — for MPC's
    ``k ~ n^(1-delta)`` machines that removes an ``O(k * n)`` pickling and
    memory blow-up.
    """

    key: str


def _resolve_shared(state: Any, shared: dict, session: str) -> Any:
    """Replace top-level ``SharedRef`` values of a state dict (documented
    contract: references are only resolved at the first nesting level)."""
    if isinstance(state, dict):
        return {
            name: shared[(session, value.key)] if isinstance(value, SharedRef) else value
            for name, value in state.items()
        }
    return state


class Transport:
    """Execution + delivery contract shared by all transports.

    ``fn`` passed to :meth:`run_node` / :meth:`run_nodes` must be a picklable
    top-level function with signature ``fn(state, *args) -> (state, result)``;
    the transport stores the returned state for the next call on that node.

    ``private`` marks a transport owned by a single run: the topology that
    holds it calls :meth:`close` when the run ends (shared pools stay up).
    """

    name = "transport"
    private = False

    #: Fault plan attached directly to this transport (chaos tests that must
    #: reach thread-pool workers, where the ambient contextvar plan does not
    #: travel).  ``None`` means "consult the ambient plan only".
    _fault_plan = None

    def attach_fault_plan(self, plan) -> None:
        """Attach a :class:`~repro.resilience.faults.FaultPlan` (or ``None``).

        Unlike :func:`~repro.resilience.faults.fault_injection`, an attached
        plan is consulted from *every* thread that uses this transport.
        """
        self._fault_plan = plan

    def _active_plan(self):
        plan = self._fault_plan
        return plan if plan is not None else active_fault_plan()

    def health(self) -> dict:
        """Liveness / degradation summary (deepened by supervised pools)."""
        return {"kind": self.name, "supervised": False, "degraded": False}

    def init_shared(self, session: str, key: str, value: Any) -> None:
        """Install one session-shared object (referenced via ``SharedRef``)."""
        raise NotImplementedError

    def init_node(self, session: str, node_id: int, state: Any) -> None:
        """Install the initial state of one node (resolving ``SharedRef``s)."""
        raise NotImplementedError

    def run_nodes(
        self,
        session: str,
        node_ids: Sequence[int],
        fn: Callable[..., Any],
        args_list: Sequence[tuple],
    ) -> list[Any]:
        """Run ``fn`` on every listed node; results in ``node_ids`` order."""
        raise NotImplementedError

    def run_node(self, session: str, node_id: int, fn: Callable[..., Any], *args: Any) -> Any:
        return self.run_nodes(session, [node_id], fn, [args])[0]

    def deliver(self, payload: Payload) -> Payload:
        """The payload as the receiver observes it."""
        raise NotImplementedError

    def release(self, session: str) -> None:
        """Drop every node state of one session."""
        raise NotImplementedError

    def close(self) -> None:
        """Tear the transport down (no-op for in-process)."""


class InProcessTransport(Transport):
    """The deterministic, zero-copy default: everything runs inline."""

    name = "inprocess"

    def __init__(self) -> None:
        self._states: dict[tuple[str, int], Any] = {}
        self._shared: dict[tuple[str, str], Any] = {}

    def init_shared(self, session: str, key: str, value: Any) -> None:
        self._shared[(session, key)] = value

    def init_node(self, session: str, node_id: int, state: Any) -> None:
        self._states[(session, node_id)] = _resolve_shared(state, self._shared, session)

    def run_nodes(self, session, node_ids, fn, args_list):
        results = []
        for node_id, args in zip(node_ids, args_list):
            key = (session, node_id)
            state, result = fn(self._states[key], *args)
            self._states[key] = state
            results.append(result)
        return results

    def deliver(self, payload: Payload) -> Payload:
        plan = self._active_plan()
        if plan is not None:
            return faulted_delivery(plan, payload, lambda p: p)
        return payload

    def release(self, session: str) -> None:
        for key in [k for k in self._states if k[0] == session]:
            del self._states[key]
        for key in [k for k in self._shared if k[0] == session]:
            del self._shared[key]


def _worker_main(conn) -> None:  # pragma: no cover - runs in a child process
    """Worker loop: hold node states, apply task functions, reply with results.

    Shared values arrive as ordinary pickles; a pickled
    :class:`~repro.fabric.shm.ShippedObject` transparently re-attaches the
    parent's shared segment, so the worker maps the same physical pages
    instead of holding a private copy.  Which segments each session pulled
    in is tracked so ``release`` can drop the mappings again — a long-lived
    pool must not accumulate maps of unlinked segments across solves.
    Task functions are cached per pickle (they are shipped by reference and
    recur every round); args/results travel through the pickle-free frame
    codec.
    """
    states: dict[tuple[str, int], Any] = {}
    shared: dict[tuple[str, str], Any] = {}
    fn_cache: dict[bytes, Any] = {}
    session_segments: dict[str, set[str]] = {}
    while True:
        try:
            message = conn.recv()
        except (EOFError, OSError):
            return
        command = message[0]
        if command == "stop":
            return
        try:
            if command == "share":
                _, session, key, value_bytes = message
                with shm.track_attachments() as seen:
                    shared[(session, key)] = pickle.loads(value_bytes)
                if seen:
                    known = session_segments.setdefault(session, set())
                    fresh = seen - known
                    if fresh:
                        shm.retain_attachments(fresh)
                        known.update(fresh)
                conn.send(("ok", None))
            elif command == "init":
                _, session, node_id, state_bytes = message
                states[(session, node_id)] = _resolve_shared(
                    wirecodec.loads(state_bytes), shared, session
                )
                conn.send(("ok", None))
            elif command == "run":
                _, session, tasks = message
                results = []
                for node_id, fn_bytes, args_bytes in tasks:
                    fn = fn_cache.get(fn_bytes)
                    if fn is None:
                        fn = fn_cache[fn_bytes] = pickle.loads(fn_bytes)
                    args = wirecodec.loads(args_bytes)
                    key = (session, node_id)
                    state, result = fn(states[key], *args)
                    states[key] = state
                    results.append(wirecodec.dumps(result))
                conn.send(("ok", results))
            elif command == "ping":
                conn.send(("ok", "pong"))
            elif command == "release":
                _, session = message
                for key in [k for k in states if k[0] == session]:
                    del states[key]
                for key in [k for k in shared if k[0] == session]:
                    del shared[key]
                names = session_segments.pop(session, None)
                if names:
                    shm.release_attachments(names)
                conn.send(("ok", None))
            else:
                conn.send(("error", f"unknown command {command!r}"))
        except BaseException:
            conn.send(("error", traceback.format_exc()))


class ProcessPoolTransport(Transport):
    """Real multiprocess workers for coordinator sites and MPC machines.

    Nodes are pinned to workers (``node_id % max_workers``) so a node's state
    stays on one worker for the whole session; the state — including the
    node's private RNG, derived from the run's root seed via
    ``SeedSequence.spawn`` — is shipped once at init and then lives worker
    side.  Payload delivery round-trips the canonical wire bytes, so the
    receiver observes exactly what a remote peer would.

    Per-worker locks make the transport safe under the thread-pool batch
    layer: two threads' sessions interleave at message granularity but each
    session's task order (and therefore its RNG consumption) is fixed by its
    own thread, keeping batches deterministic.
    """

    name = "process"

    def __init__(
        self,
        max_workers: int = 2,
        start_method: str = "spawn",
        shared_memory: bool = True,
    ) -> None:
        if max_workers < 1:
            raise ValueError(f"max_workers must be >= 1, got {max_workers}")
        self.max_workers = int(max_workers)
        self.start_method = start_method
        # Requested zero-copy shipping degrades silently to the pickle path
        # on platforms without working POSIX shared memory.
        self.shared_memory = bool(shared_memory) and shm.shared_memory_supported()
        self._context = mp.get_context(start_method)
        self._workers: list[tuple[Any, Any]] = []  # (process, connection)
        self._locks: list[threading.Lock] = []
        self._started = False
        self._start_lock = threading.Lock()
        self._closed = False
        # pickle.dumps(fn) per (session, fn): task functions are shipped by
        # reference and recur every round, so the dumps is paid once.
        self._fn_cache: dict[tuple[str, Any], bytes] = {}
        self._fn_cache_lock = threading.Lock()

    # ------------------------------------------------------------------ #
    # Worker lifecycle
    # ------------------------------------------------------------------ #

    def _ensure_started(self) -> None:
        if self._started:
            return
        with self._start_lock:
            if self._started:
                return
            if self._closed:
                raise CommunicationError("transport is closed")
            for _ in range(self.max_workers):
                parent_conn, child_conn = self._context.Pipe()
                process = self._context.Process(
                    target=_worker_main, args=(child_conn,), daemon=True
                )
                process.start()
                child_conn.close()
                self._workers.append((process, parent_conn))
                self._locks.append(threading.Lock())
            self._started = True

    def warm_up(self) -> None:
        """Start the worker processes now.

        Sessions call this at construction so the (substantial, under
        ``spawn``) interpreter start-up cost is paid once up front instead of
        inside the first solve's latency.
        """
        self._ensure_started()

    def _worker_for(self, node_id: int) -> int:
        return int(node_id) % self.max_workers

    def _send(self, worker: int, message: tuple) -> None:
        _, conn = self._workers[worker]
        try:
            conn.send(message)
        except (OSError, BrokenPipeError, ValueError) as exc:
            # Pipe-level failure: the worker process is gone or wedged.  This
            # is an *infrastructure* fault (retryable — a supervised pool can
            # restart the worker), unlike the task-level error reply below.
            raise TransportFailure(
                f"worker {worker} is unreachable (died?): {exc!r}",
                retryable=True,
                worker=worker,
            ) from exc

    def _recv(self, worker: int) -> Any:
        _, conn = self._workers[worker]
        try:
            status, body = conn.recv()
        except (EOFError, OSError) as exc:
            raise TransportFailure(
                f"worker {worker} died mid-request: {exc!r}",
                retryable=True,
                worker=worker,
            ) from exc
        if status == "error":
            # The worker is alive and replied: user task code raised.  Not a
            # transport fault — restarting workers cannot fix it.
            raise CommunicationError(f"worker {worker} failed:\n{body}")
        return body

    def _request(self, worker: int, message: tuple) -> Any:
        with self._locks[worker]:
            self._send(worker, message)
            return self._recv(worker)

    # ------------------------------------------------------------------ #
    # Wire encoding helpers
    # ------------------------------------------------------------------ #

    def _fn_bytes(self, session: str, fn: Callable[..., Any]) -> bytes:
        """``pickle.dumps(fn)``, cached per ``(session, fn)``."""
        cache_key = (session, fn)
        cached = self._fn_cache.get(cache_key)
        if cached is None:
            cached = pickle.dumps(fn)  # by reference: fn must be top-level
            with self._fn_cache_lock:
                self._fn_cache[cache_key] = cached
        return cached

    def _release_caches(self, session: str) -> None:
        """Drop per-session wire caches and this session's shm ownership."""
        with self._fn_cache_lock:
            for cache_key in [k for k in self._fn_cache if k[0] == session]:
                del self._fn_cache[cache_key]
        shm.store().release_owner(session)

    # ------------------------------------------------------------------ #
    # Transport API
    # ------------------------------------------------------------------ #

    def init_shared(self, session: str, key: str, value: Any) -> None:
        """Ship one session-shared object to every worker, once each.

        With ``shared_memory`` enabled the object's large contiguous arrays
        are exported to a POSIX shared-memory segment owned by this session
        (plus any ambient pin, e.g. the API session's lifetime token); the
        pickle shipped below then carries a segment *reference* instead of
        the array bytes, and every worker maps the same physical pages.
        """
        self._ensure_started()
        if self.shared_memory:
            value = shm.store().export(value, owner=session)
        value_bytes = pickle.dumps(value)
        for worker in range(self.max_workers):
            self._request(worker, ("share", session, key, value_bytes))

    def init_node(self, session: str, node_id: int, state: Any) -> None:
        self._ensure_started()
        self._request(
            self._worker_for(node_id),
            ("init", session, node_id, wirecodec.dumps(state)),
        )

    def run_nodes(self, session, node_ids, fn, args_list):
        self._ensure_started()
        fn_bytes = self._fn_bytes(session, fn)
        per_worker: dict[int, list[tuple[int, bytes, bytes]]] = {}
        order: list[tuple[int, int]] = []  # (worker, position in its batch)
        for node_id, args in zip(node_ids, args_list):
            worker = self._worker_for(node_id)
            batch = per_worker.setdefault(worker, [])
            order.append((worker, len(batch)))
            batch.append((node_id, fn_bytes, wirecodec.dumps(tuple(args))))
        # Ship every worker its batch before collecting any reply, so the
        # workers genuinely run in parallel.  Locks are taken in sorted
        # worker order — every thread uses the same order, so two concurrent
        # batches cannot deadlock on each other's workers.  On failure the
        # reply of every worker that was sent a batch is still drained:
        # leaving an unread reply in a (shared!) worker's pipe would hand the
        # *next* batch this batch's stale results.
        workers = sorted(per_worker)
        raw: dict[int, list[bytes]] = {}
        errors: list[CommunicationError] = []
        sent: list[int] = []
        for worker in workers:
            self._locks[worker].acquire()
        try:
            for worker in workers:
                try:
                    self._send(worker, ("run", session, per_worker[worker]))
                    sent.append(worker)
                except CommunicationError as exc:
                    errors.append(exc)
            for worker in sent:
                try:
                    raw[worker] = self._recv(worker)
                except CommunicationError as exc:
                    errors.append(exc)
        finally:
            for worker in workers:
                self._locks[worker].release()
        if errors:
            raise errors[0]
        return [wirecodec.loads(raw[worker][position]) for worker, position in order]

    def deliver(self, payload: Payload) -> Payload:
        plan = self._active_plan()
        if plan is not None:
            return faulted_delivery(
                plan, payload, lambda p: decode_payload(p.to_bytes())
            )
        return decode_payload(payload.to_bytes())

    def release(self, session: str) -> None:
        try:
            if self._started:
                for worker in range(self.max_workers):
                    self._request(worker, ("release", session))
        finally:
            # Even if a worker is unreachable, the session's shm ownership
            # must drain — a crashed worker cannot keep a segment pinned.
            self._release_caches(session)

    def close(self) -> None:
        self._closed = True
        if not self._started:
            return
        for (process, conn), lock in zip(self._workers, self._locks):
            with lock:
                try:
                    conn.send(("stop",))
                except (OSError, BrokenPipeError):
                    pass
                conn.close()
            process.join(timeout=5)
            if process.is_alive():  # pragma: no cover - defensive
                process.terminate()
        self._workers.clear()
        self._locks.clear()
        self._started = False


_SHARED_POOLS: dict[tuple[int, str, bool, bool], ProcessPoolTransport] = {}
_SHARED_POOLS_LOCK = threading.Lock()


def shared_process_transport(
    max_workers: int = 2,
    start_method: str = "spawn",
    supervised: bool = False,
    shared_memory: bool = True,
) -> ProcessPoolTransport:
    """A process-wide pool shared by every solve that asks for these knobs.

    Worker start-up (a fresh interpreter plus imports under ``spawn``) is paid
    once per ``(max_workers, start_method, supervised, shared_memory)`` tuple
    instead of once per solve; sessions namespace the node states, so sharing
    is invisible to callers.  ``supervised=True`` returns a
    :class:`~repro.resilience.supervisor.SupervisedProcessPoolTransport`
    (crash detection, bounded restart, journal replay) instead of the bare
    pool.  The pools are closed atexit.
    """
    key = (int(max_workers), start_method, bool(supervised), bool(shared_memory))
    with _SHARED_POOLS_LOCK:
        pool = _SHARED_POOLS.get(key)
        if pool is None:
            if supervised:
                # Imported lazily: the supervisor module subclasses
                # ProcessPoolTransport, so a top-level import would cycle.
                from ..resilience.supervisor import SupervisedProcessPoolTransport

                pool = SupervisedProcessPoolTransport(
                    max_workers=max_workers,
                    start_method=start_method,
                    shared_memory=shared_memory,
                )
            else:
                pool = ProcessPoolTransport(
                    max_workers=max_workers,
                    start_method=start_method,
                    shared_memory=shared_memory,
                )
            _SHARED_POOLS[key] = pool
    return pool


@atexit.register
def _close_shared_pools() -> None:  # pragma: no cover - interpreter shutdown
    with _SHARED_POOLS_LOCK:
        for pool in _SHARED_POOLS.values():
            pool.close()
        _SHARED_POOLS.clear()


_PINNED_TRANSPORT: ContextVar[Optional[Transport]] = ContextVar(
    "repro_pinned_transport", default=None
)


@contextmanager
def pinned_transport(transport: Optional[Transport]) -> Iterator[None]:
    """Pin one transport for every :func:`resolve_transport` call in scope.

    The session API uses this to hand its long-lived worker pool to the
    drivers without widening their signatures: while the pin is active, any
    driver asking for a transport of the pinned *kind* receives the pinned
    instance instead of resolving a fresh (or shared) one.  The pinned
    transport is never marked ``private``, so topologies release their node
    states on ``close()`` but leave the workers running — the owner (the
    session) tears the pool down when it exits.

    ``None`` pins nothing (callers can pass their maybe-transport through
    unconditionally).
    """
    if transport is None:
        yield
        return
    token = _PINNED_TRANSPORT.set(transport)
    try:
        yield
    finally:
        _PINNED_TRANSPORT.reset(token)


def resolve_transport(config: "TransportConfig | None") -> Transport:
    """The transport instance for one solve, from its (optional) config.

    A transport pinned via :func:`pinned_transport` wins whenever its kind
    matches the requested one (sessions reuse one pool across solves).
    Otherwise ``None`` and ``kind="inprocess"`` return a fresh
    :class:`InProcessTransport` (per-solve state isolation is free);
    ``kind="process"`` returns the shared pool by default, or a dedicated
    pool when ``config.reuse_pool`` is false — the dedicated pool is marked
    ``private`` so the owning topology tears it down when the run ends.
    """
    pinned = _PINNED_TRANSPORT.get()
    if pinned is not None:
        requested = "inprocess" if config is None else config.kind
        if requested == pinned.name:
            return pinned
    if config is None or config.kind == "inprocess":
        return InProcessTransport()
    if config.kind == "process":
        supervised = bool(getattr(config, "supervised", False))
        shared_memory = bool(getattr(config, "shared_memory", True))
        if config.reuse_pool:
            return shared_process_transport(
                config.max_workers,
                config.start_method,
                supervised=supervised,
                shared_memory=shared_memory,
            )
        if supervised:
            from ..resilience.supervisor import SupervisedProcessPoolTransport
            from ..resilience.retry import RetryPolicy

            transport: ProcessPoolTransport = SupervisedProcessPoolTransport(
                max_workers=config.max_workers,
                start_method=config.start_method,
                shared_memory=shared_memory,
                restart_policy=RetryPolicy(
                    max_attempts=getattr(config, "max_restarts", 3),
                    backoff_s=getattr(config, "restart_backoff_s", 0.05),
                ),
            )
        else:
            transport = ProcessPoolTransport(
                max_workers=config.max_workers,
                start_method=config.start_method,
                shared_memory=shared_memory,
            )
        transport.private = True
        return transport
    if config.kind == "tcp":
        # Imported lazily: the cluster package builds on this module (and on
        # the resilience supervisor), so a top-level import would cycle.
        from ..cluster.transport import resolve_tcp_transport

        return resolve_tcp_transport(config)
    raise CommunicationError(f"unknown transport kind {config.kind!r}")
