"""Typed, serializable message payloads with measured bit accounting.

Every message that crosses a fabric topology is one of the payload types
below.  A payload knows how to serialize itself into a canonical wire format
(:meth:`Payload.to_bytes` / :func:`decode_payload`) and its communication
cost is **computed from that serialized form** — the coefficient and counter
counts charged to the ledger are exactly the numbers written to the wire,
so a caller can neither under- nor over-declare what a message costs.  This
closes the under-counting hazard of the legacy
:class:`repro.models.coordinator.Message`, whose ``bits`` field was
caller-declared.

Wire format (little-endian): a one-byte payload kind, then each array field
as ``(dtype code: 1 byte, element count: uint32, raw bytes)``.  The format
is self-describing enough for :func:`decode_payload` to reconstruct the
payload in another process; framing bytes (kind, dtype codes, lengths) are
protocol overhead and are charged zero bits, exactly as the paper's
accounting charges only the transmitted numbers.

The split between *coefficients* (real numbers, ``bits_per_coefficient``)
and *counters* (small integers, ``bits_per_counter``) follows
:class:`repro.core.accounting.BitCostModel`: float64 wire fields are
coefficients, int64 wire fields are counters.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Mapping

import numpy as np

from ..core.accounting import BitCostModel

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..core.lptype import LPTypeProblem

__all__ = [
    "Payload",
    "Flag",
    "Count",
    "Scalar",
    "Vector",
    "IndexBlock",
    "ConstraintBlock",
    "BasisPayload",
    "StatsBlock",
    "RawBits",
    "decode_payload",
    "measure_object_bits",
    "constraint_rows",
]

_COEFF = b"f"  # float64 field -> charged as coefficients
_COUNT = b"i"  # int64 field   -> charged as counters
_TEXT = b"t"  # utf-8 tag     -> protocol framing, charged zero bits


def _write_array(parts: list[bytes], values: np.ndarray, code: bytes) -> None:
    dtype = np.float64 if code == _COEFF else np.int64
    arr = np.ascontiguousarray(np.asarray(values).reshape(-1), dtype=dtype)
    parts.append(code)
    parts.append(struct.pack("<I", arr.size))
    parts.append(arr.tobytes())


def _write_text(parts: list[bytes], text: str) -> None:
    raw = text.encode("utf-8")
    parts.append(_TEXT)
    parts.append(struct.pack("<I", len(raw)))
    parts.append(raw)


class _WireReader:
    """Sequential reader over the canonical wire format.

    Accepts ``bytes`` or a ``memoryview`` — the process transports' frame
    codec hands in zero-copy views of larger wire frames.
    """

    def __init__(self, data: "bytes | memoryview") -> None:
        self.data = data
        self.offset = 0

    def read_field(self) -> Any:
        code = bytes(self.data[self.offset : self.offset + 1])
        (count,) = struct.unpack_from("<I", self.data, self.offset + 1)
        self.offset += 5
        if code == _TEXT:
            raw = self.data[self.offset : self.offset + count]
            self.offset += count
            return bytes(raw).decode("utf-8")
        dtype = np.float64 if code == _COEFF else np.int64
        nbytes = count * 8
        arr = np.frombuffer(
            self.data, dtype=dtype, count=count, offset=self.offset
        ).copy()
        self.offset += nbytes
        return arr


@dataclass(frozen=True)
class Payload:
    """Base class of all fabric payloads.

    Subclasses define :meth:`_fields` — the ordered wire fields — from which
    serialization, deserialization, and the measured bit size all derive, so
    the three can never disagree.
    """

    kind = "payload"

    def _fields(self) -> list[tuple[bytes, Any]]:
        """Ordered ``(code, value)`` wire fields of this payload."""
        raise NotImplementedError

    def to_bytes(self) -> bytes:
        """Serialize into the canonical wire format."""
        parts: list[bytes] = [_KIND_BYTES[type(self)]]
        for code, value in self._fields():
            if code == _TEXT:
                _write_text(parts, value)
            else:
                _write_array(parts, value, code)
        return b"".join(parts)

    def wire_counts(self) -> tuple[int, int]:
        """``(num_coefficients, num_counters)`` actually written to the wire."""
        coefficients = 0
        counters = 0
        for code, value in self._fields():
            if code == _COEFF:
                coefficients += int(np.asarray(value).size)
            elif code == _COUNT:
                counters += int(np.asarray(value).size)
        return coefficients, counters

    def measured_bits(self, cost_model: BitCostModel) -> int:
        """Bit cost of this payload, measured from its serialized content."""
        coefficients, counters = self.wire_counts()
        return cost_model.coefficients(coefficients) + cost_model.counters(counters)


@dataclass(frozen=True)
class Flag(Payload):
    """A tagged one-counter control message (success flags, mode switches)."""

    tag: str
    value: int

    kind = "flag"

    def _fields(self) -> list[tuple[bytes, Any]]:
        return [(_TEXT, self.tag), (_COUNT, np.asarray([self.value]))]

    @classmethod
    def _decode(cls, reader: _WireReader) -> "Flag":
        tag = reader.read_field()
        value = reader.read_field()
        return cls(tag=tag, value=int(value[0]))


@dataclass(frozen=True)
class Count(Payload):
    """One small integer (a sample count, an index, a position)."""

    value: int

    kind = "count"

    def _fields(self) -> list[tuple[bytes, Any]]:
        return [(_COUNT, np.asarray([self.value]))]

    @classmethod
    def _decode(cls, reader: _WireReader) -> "Count":
        return cls(value=int(reader.read_field()[0]))


@dataclass(frozen=True)
class Scalar(Payload):
    """One real number (a weight total, an objective value)."""

    value: float

    kind = "scalar"

    def _fields(self) -> list[tuple[bytes, Any]]:
        return [(_COEFF, np.asarray([self.value]))]

    @classmethod
    def _decode(cls, reader: _WireReader) -> "Scalar":
        return cls(value=float(reader.read_field()[0]))


@dataclass(frozen=True)
class Vector(Payload):
    """A dense vector of real coefficients."""

    values: np.ndarray

    kind = "vector"

    def _fields(self) -> list[tuple[bytes, Any]]:
        return [(_COEFF, self.values)]

    @classmethod
    def _decode(cls, reader: _WireReader) -> "Vector":
        return cls(values=reader.read_field())


@dataclass(frozen=True)
class IndexBlock(Payload):
    """A block of constraint indices (counters, not coefficients)."""

    indices: np.ndarray

    kind = "indices"

    def _fields(self) -> list[tuple[bytes, Any]]:
        return [(_COUNT, self.indices)]

    @classmethod
    def _decode(cls, reader: _WireReader) -> "IndexBlock":
        return cls(indices=reader.read_field())


@dataclass(frozen=True)
class ConstraintBlock(Payload):
    """A block of whole constraints: global indices plus their coefficient rows.

    This is what a site/machine actually ships when it contributes its part
    of an eps-net sample: each constraint costs its identity (one counter)
    plus its ``payload_num_coefficients`` real coefficients — the serialized
    rows, not a caller-declared estimate.
    """

    indices: np.ndarray
    rows: np.ndarray = field(default_factory=lambda: np.empty((0, 0)))

    kind = "constraints"

    def _fields(self) -> list[tuple[bytes, Any]]:
        return [
            (_COUNT, self.indices),
            (_COUNT, np.asarray(self.rows.shape, dtype=np.int64)),
            (_COEFF, self.rows),
        ]

    def wire_counts(self) -> tuple[int, int]:
        # The shape header is framing (it is implied by the indices count and
        # the problem family), so only the identities and the rows are
        # charged; the identities are counters, the rows coefficients.
        return int(np.asarray(self.rows).size), int(np.asarray(self.indices).size)

    @classmethod
    def _decode(cls, reader: _WireReader) -> "ConstraintBlock":
        indices = reader.read_field()
        shape = tuple(int(s) for s in reader.read_field())
        rows = reader.read_field().reshape(shape)
        return cls(indices=indices, rows=rows)


@dataclass(frozen=True)
class BasisPayload(Payload):
    """A basis broadcast: basis constraints (identity + rows) plus the witness."""

    indices: np.ndarray
    rows: np.ndarray
    witness: np.ndarray
    flag: int = 0

    kind = "basis"

    def _fields(self) -> list[tuple[bytes, Any]]:
        return [
            (_COUNT, self.indices),
            (_COUNT, np.asarray(self.rows.shape, dtype=np.int64)),
            (_COEFF, self.rows),
            (_COEFF, self.witness),
            (_COUNT, np.asarray([self.flag])),
        ]

    def wire_counts(self) -> tuple[int, int]:
        coefficients = int(np.asarray(self.rows).size) + int(
            np.asarray(self.witness).size
        )
        counters = int(np.asarray(self.indices).size) + 1  # identities + flag
        return coefficients, counters

    @classmethod
    def _decode(cls, reader: _WireReader) -> "BasisPayload":
        indices = reader.read_field()
        shape = tuple(int(s) for s in reader.read_field())
        rows = reader.read_field().reshape(shape)
        witness = reader.read_field()
        flag = int(reader.read_field()[0])
        return cls(indices=indices, rows=rows, witness=witness, flag=flag)


@dataclass(frozen=True)
class StatsBlock(Payload):
    """A fixed-size block of real statistics (violator weight, totals, ...)."""

    values: np.ndarray

    kind = "stats"

    def _fields(self) -> list[tuple[bytes, Any]]:
        return [(_COEFF, self.values)]

    @classmethod
    def _decode(cls, reader: _WireReader) -> "StatsBlock":
        return cls(values=reader.read_field())


@dataclass(frozen=True)
class RawBits(Payload):
    """Legacy adapter: a payload whose bit size was declared by the caller.

    Only the legacy :class:`repro.models.coordinator.Message` /
    :class:`repro.models.mpc.MPCCluster` shims produce these; the fabric
    drivers never do.  The declared size is trusted as-is, so the shims
    behave exactly as before the fabric existed.
    """

    payload: Any
    bits: int

    kind = "raw"

    def _fields(self) -> list[tuple[bytes, Any]]:
        return [(_COUNT, np.asarray([self.bits]))]

    def measured_bits(self, cost_model: BitCostModel) -> int:
        return int(self.bits)

    def to_bytes(self) -> bytes:  # the opaque payload does not serialize
        parts: list[bytes] = [_KIND_BYTES[type(self)]]
        _write_array(parts, np.asarray([self.bits]), _COUNT)
        return b"".join(parts)

    @classmethod
    def _decode(cls, reader: _WireReader) -> "RawBits":
        return cls(payload=None, bits=int(reader.read_field()[0]))


_PAYLOAD_TYPES: tuple[type[Payload], ...] = (
    Flag,
    Count,
    Scalar,
    Vector,
    IndexBlock,
    ConstraintBlock,
    BasisPayload,
    StatsBlock,
    RawBits,
)
_KIND_BYTES: Mapping[type, bytes] = {
    cls: bytes([i]) for i, cls in enumerate(_PAYLOAD_TYPES)
}


def decode_payload(data: "bytes | memoryview") -> Payload:
    """Reconstruct a payload from its canonical wire bytes (or a view)."""
    kind = data[0]
    if kind >= len(_PAYLOAD_TYPES):
        raise ValueError(f"unknown payload kind byte {kind}")
    reader = _WireReader(data)
    reader.offset = 1
    return _PAYLOAD_TYPES[kind]._decode(reader)


def measure_object_bits(obj: Any, cost_model: BitCostModel) -> int:
    """Measured bit size of an arbitrary (legacy) message payload.

    Walks the object the way serialization would: floats are coefficients,
    integers are counters, strings are protocol tags (zero bits), arrays are
    charged per element by dtype, and containers sum their members.  Used by
    the strict mode of the legacy :class:`~repro.models.coordinator.Message`
    path to detect declared-vs-measured divergence.
    """
    if obj is None or isinstance(obj, str):
        return 0
    if isinstance(obj, Payload):
        return obj.measured_bits(cost_model)
    if isinstance(obj, (bool, int, np.integer)):
        return cost_model.counters(1)
    if isinstance(obj, (float, np.floating)):
        return cost_model.coefficients(1)
    if isinstance(obj, np.ndarray):
        if obj.dtype.kind == "f" or obj.dtype.kind == "c":
            return cost_model.coefficients(int(obj.size))
        if obj.dtype.kind in "iub":
            return cost_model.counters(int(obj.size))
        return sum(measure_object_bits(item, cost_model) for item in obj.reshape(-1))
    if isinstance(obj, (tuple, list, set, frozenset)):
        return sum(measure_object_bits(item, cost_model) for item in obj)
    if isinstance(obj, Mapping):
        return sum(measure_object_bits(value, cost_model) for value in obj.values())
    raise TypeError(
        f"cannot measure the bit size of a {type(obj).__name__} payload; "
        "use a repro.fabric payload type"
    )


def constraint_rows(problem: "LPTypeProblem", indices: np.ndarray) -> np.ndarray:
    """The serialized coefficient rows of ``indices``: shape ``(k, coeffs)``.

    Built from the packed constraint data plane, which is exactly the
    ``payload_num_coefficients`` payload the accounting charges per shipped
    constraint.  Two layouts cover the built-in families without dropping
    data:

    * payload width == pack width (MEB: one point per constraint encoded as
      the packed ``-2q`` row) — the packed row *is* the constraint;
    * payload width == pack width + 1 (LP/SVM/QP: coefficient row plus a
      right-hand side) — the packed row with ``rhs`` appended.

    Problems without a pack, or with an unrecognised width, fall back to a
    zero block of the declared payload width: the *measured* size still
    equals the modelled size, and nothing is silently mislabelled as real
    constraint data.
    """
    idx = np.asarray(indices, dtype=int)
    width = problem.payload_num_coefficients()
    pack = problem.constraint_pack()
    if pack is None or idx.size == 0:
        return np.zeros((idx.size, width), dtype=np.float64)
    pack_width = int(pack.rows.shape[1])
    if width == pack_width:
        return np.ascontiguousarray(pack.rows[idx], dtype=np.float64)
    if width == pack_width + 1:
        block = np.empty((idx.size, width), dtype=np.float64)
        block[:, :pack_width] = pack.rows[idx]
        block[:, pack_width] = pack.rhs[idx]
        return block
    return np.zeros((idx.size, width), dtype=np.float64)


def encode_witness_vector(problem: "LPTypeProblem", witness: Any) -> np.ndarray:
    """The witness as a flat coefficient vector for a :class:`BasisPayload`."""
    encoded = problem.encode_witness(witness)
    if encoded is not None:
        vector, offset = encoded
        return np.concatenate([np.asarray(vector, dtype=np.float64).reshape(-1), [offset]])
    try:
        return np.asarray(witness, dtype=np.float64).reshape(-1)
    except (TypeError, ValueError):
        return np.zeros(problem.dimension, dtype=np.float64)
