"""The unified communication fabric under the streaming, coordinator, and MPC models.

One transport layer plus one topology layer replace the three hand-rolled
substrates:

* :mod:`repro.fabric.payload` — typed, serializable message payloads whose
  bit size is *measured from the serialized form*, never declared by callers;
* :mod:`repro.fabric.transport` — how node-local computation executes and how
  payloads move: :class:`InProcessTransport` (deterministic, zero-copy,
  default) and :class:`ProcessPoolTransport` (real multiprocess workers,
  bit-identical results to in-process);
* :mod:`repro.fabric.topology` — who talks to whom and when: star and
  tree-aggregation coordinator topologies, the round-synchronous MPC grid,
  and the single-reader stream, all feeding one shared
  :class:`~repro.core.accounting.RoundLedger`.

The three model substrates (:mod:`repro.models.coordinator`,
:mod:`repro.models.mpc`, :mod:`repro.models.streaming`) are thin bindings
over this package, and the distributed drivers in :mod:`repro.algorithms`
speak only to topologies — the same driver code runs unchanged on either
transport and on either coordinator topology.
"""

from .payload import (
    BasisPayload,
    ConstraintBlock,
    Count,
    Flag,
    IndexBlock,
    Payload,
    RawBits,
    Scalar,
    StatsBlock,
    Vector,
    constraint_rows,
    decode_payload,
    encode_witness_vector,
    measure_object_bits,
)
from .transport import (
    InProcessTransport,
    ProcessPoolTransport,
    Transport,
    resolve_transport,
    shared_process_transport,
)
from .topology import (
    GridTopology,
    StarTopology,
    StreamTopology,
    Topology,
    TreeTopology,
)

__all__ = [
    "Payload",
    "Flag",
    "Count",
    "Scalar",
    "Vector",
    "IndexBlock",
    "ConstraintBlock",
    "BasisPayload",
    "StatsBlock",
    "RawBits",
    "decode_payload",
    "measure_object_bits",
    "constraint_rows",
    "encode_witness_vector",
    "Transport",
    "InProcessTransport",
    "ProcessPoolTransport",
    "resolve_transport",
    "shared_process_transport",
    "Topology",
    "StarTopology",
    "TreeTopology",
    "GridTopology",
    "StreamTopology",
]
