"""Pluggable kernel backends for the solver's hot array loops.

The registry knows four backends:

* ``numpy`` — the reference implementation (the pre-kernel-layer code path,
  full-array temporaries); the guaranteed fallback.
* ``fused`` — NumPy-blocked sweeps with the certified float32 margin pass;
  the default.
* ``fused64`` — the same blocked evaluation in pure float64 (parity
  triangulation between ``numpy`` and ``fused``).
* ``numba`` — JIT loops, registered only when numba is importable.

Selection precedence, resolved at solve time (never at import time):

1. an explicit name (``SolverConfig.kernel_backend`` / ``use_backend``);
2. the ``REPRO_KERNEL_BACKEND`` environment variable;
3. the default (``fused``).

A requested-but-unavailable backend (e.g. ``numba`` without numba installed)
falls back to ``numpy`` with a one-time warning; an unrecognised environment
value falls back to the default likewise.  The active backend is carried in
a :mod:`contextvars` variable, so per-solve selection is thread- and
task-safe: the drivers wrap each run in :func:`use_backend`, and the fabric
node tasks re-establish the driver's choice inside worker processes.
"""

from __future__ import annotations

import contextlib
import contextvars
import os
import warnings
from typing import Iterator, Optional

from .base import KernelBackend, SweepStats, select, selector_length
from .fused import FusedBackend
from .numba_backend import NUMBA_AVAILABLE, NumbaBackend
from .reference import NumpyBackend

__all__ = [
    "KernelBackend",
    "SweepStats",
    "KNOWN_KERNEL_BACKENDS",
    "DEFAULT_KERNEL_BACKEND",
    "KERNEL_BACKEND_ENV",
    "available_backends",
    "get_backend",
    "resolve_backend_name",
    "active_backend",
    "active_backend_name",
    "use_backend",
    "select",
    "selector_length",
]

#: Every name ``SolverConfig.kernel_backend`` accepts (availability is
#: checked at solve time, so a config naming ``numba`` stays valid on a
#: machine without numba — it just falls back).
KNOWN_KERNEL_BACKENDS: tuple[str, ...] = ("numpy", "fused", "fused64", "numba")

DEFAULT_KERNEL_BACKEND = "fused"

#: Environment override, read at resolution time.
KERNEL_BACKEND_ENV = "REPRO_KERNEL_BACKEND"

_REGISTRY: dict[str, KernelBackend] = {
    "numpy": NumpyBackend(),
    "fused": FusedBackend(name="fused", use_float32=True),
    "fused64": FusedBackend(name="fused64", use_float32=False),
}
if NUMBA_AVAILABLE:  # pragma: no cover - exercised only where numba is installed
    _REGISTRY["numba"] = NumbaBackend()

_ACTIVE: contextvars.ContextVar[Optional[str]] = contextvars.ContextVar(
    "repro_kernel_backend", default=None
)

_WARNED: set[str] = set()


def available_backends() -> tuple[str, ...]:
    """Names of the backends registered in this process, in registry order."""
    return tuple(name for name in KNOWN_KERNEL_BACKENDS if name in _REGISTRY)


def get_backend(name: str) -> KernelBackend:
    """The backend registered under ``name`` (raises ``KeyError`` if absent)."""
    try:
        return _REGISTRY[name]
    except KeyError:
        raise KeyError(
            f"kernel backend {name!r} is not available; "
            f"registered: {', '.join(available_backends())}"
        ) from None


def _warn_once(message: str) -> None:
    if message not in _WARNED:
        _WARNED.add(message)
        warnings.warn(message, RuntimeWarning, stacklevel=3)


def resolve_backend_name(name: Optional[str] = None) -> str:
    """Resolve a backend request to the name of a registered backend.

    ``None`` defers to ``REPRO_KERNEL_BACKEND`` and then the default.
    Unknown names fall back to the default, unavailable-but-known names
    (``numba`` without numba) to the ``numpy`` reference — each with a
    one-time warning.
    """
    requested = name or os.environ.get(KERNEL_BACKEND_ENV) or DEFAULT_KERNEL_BACKEND
    if requested not in KNOWN_KERNEL_BACKENDS:
        _warn_once(
            f"unknown kernel backend {requested!r}; "
            f"falling back to {DEFAULT_KERNEL_BACKEND!r}"
        )
        requested = DEFAULT_KERNEL_BACKEND
    if requested not in _REGISTRY:
        _warn_once(
            f"kernel backend {requested!r} is not available in this environment; "
            "falling back to 'numpy'"
        )
        requested = "numpy"
    return requested


def active_backend() -> KernelBackend:
    """The backend the current context runs on (resolving lazily)."""
    return _REGISTRY[resolve_backend_name(_ACTIVE.get())]


def active_backend_name() -> str:
    """Resolved name of the current context's backend."""
    return resolve_backend_name(_ACTIVE.get())


@contextlib.contextmanager
def use_backend(name: Optional[str]) -> Iterator[str]:
    """Pin the kernel backend for the dynamic extent of the ``with`` block.

    ``None`` pins whatever the environment/default resolution yields *now*,
    so nested code sees a stable choice for the whole solve.
    """
    resolved = resolve_backend_name(name)
    token = _ACTIVE.set(resolved)
    try:
        yield resolved
    finally:
        _ACTIVE.reset(token)
