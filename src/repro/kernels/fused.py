"""The ``fused`` and ``fused64`` NumPy-blocked backends.

Both backends evaluate the pack primitives in row blocks of
:data:`~repro.kernels.base.BLOCK_ROWS`, so per-call temporaries are
block-sized instead of ``n``-sized and the sweep streams each row of the
constraint matrix exactly once.  Blocked matrix products are bit-identical
to the reference's full products (same per-row dot, same alignment class per
block), so masks, counts, and scores match the ``numpy`` backend exactly.

``fused`` additionally runs the margin sweep in float32 with float64
re-certification: scores are first computed from cached float32 mirrors of
the pack (half the memory traffic of a float64 pass); any row whose float32
score lands inside a conservative error band around the threshold — or is
non-finite — is recomputed in float64.  The band

    band_j = gamma * (||rows_j||_1 * max|vec| + |rhs_j| + |limit_j| + |offset|),
    gamma  = (4 d + 64) * 2^-23

over-estimates the worst-case float32 evaluation error (a standard
forward-error bound with a ~4x safety factor covering the band's own float32
rounding; a tiny absolute floor guards the subnormal range), so the sign of
every certified float32 score agrees with the float64 score and the
resulting masks are **bit-identical** to the reference.  ``fused64`` is the
same blocked evaluation in pure float64 — no float32 mirrors, no band — and
exists to triangulate parity failures (reference vs blocked vs certified).
"""

from __future__ import annotations

from typing import Any, Optional

import numpy as np

from .base import BLOCK_ROWS, KernelBackend, SweepStats, _TINY_UNIFORM, select
from .reference import NumpyBackend

__all__ = ["FusedBackend"]

#: Absolute floor added to the certification band so that it never rounds to
#: zero in the float32 subnormal range while the true error is non-zero.
_BAND_FLOOR = np.float32(1e-35)


class _Float32Mirror:
    """Per-pack float32 mirrors plus the certification-band ingredients."""

    __slots__ = ("rows", "rhs", "limit", "norm1", "gmag")

    def __init__(self, pack: Any) -> None:
        rows64 = pack.rows
        n, d = rows64.shape
        self.rows = np.empty((n, d), dtype=np.float32)
        self.norm1 = np.empty(n, dtype=np.float32)
        # Cast and reduce block-by-block: the float64 rows are streamed once
        # and the |row| reduction runs on the cache-resident float32 block,
        # instead of materialising an n x d |rows| temporary.  The band's 4x
        # safety factor absorbs the (d+1) ulp difference between this
        # float32 1-norm and an exact float64 one.
        absbuf = np.empty((min(BLOCK_ROWS, max(n, 1)), d), dtype=np.float32)
        for start in range(0, n, BLOCK_ROWS):
            blk = slice(start, min(n, start + BLOCK_ROWS))
            block32 = self.rows[blk]
            np.copyto(block32, rows64[blk], casting="same_kind")
            scratch = absbuf[: block32.shape[0]]
            np.abs(block32, out=scratch)
            self.norm1[blk] = scratch.sum(axis=1)
        self.rhs = pack.rhs.astype(np.float32)
        self.limit = pack.limit.astype(np.float32)
        # gamma is folded into the cached magnitude term (and, per sweep,
        # into the norm/offset scalars), so the band needs three block passes
        # instead of five.  The regrouped rounding differs from the literal
        # gamma * (...) formula by a few ulps, which the band's safety
        # factor absorbs.
        gamma = _band_gamma(d)
        self.gmag = (np.abs(self.rhs) + np.abs(self.limit)) * gamma


def _float32_mirror(pack: Any) -> _Float32Mirror:
    cache = pack.kernel_cache()
    mirror = cache.get("float32_mirror")
    if mirror is None:
        mirror = _Float32Mirror(pack)
        cache["float32_mirror"] = mirror
    return mirror


def _band_gamma(num_coefficients: int) -> np.float32:
    return np.float32((4.0 * max(1, num_coefficients) + 64.0) * 2.0**-23)


class FusedBackend(KernelBackend):
    """Blocked sweeps; ``use_float32`` switches on the certified-fp32 margin pass."""

    def __init__(self, name: str = "fused", use_float32: bool = True) -> None:
        self.name = name
        self.use_float32 = bool(use_float32)

    # ------------------------------------------------------------------ #
    # Constraint-pack primitives
    # ------------------------------------------------------------------ #

    @staticmethod
    def _block_scores(rows, rhs, limit, sense, vec, offset, blk, out) -> None:
        """Scores of one row block written into ``out`` (reference bit pattern)."""
        m = rows[blk] @ vec
        m += offset - rhs[blk]
        if sense < 0:
            np.negative(m, out=m)
        m -= limit[blk]
        out[blk] = m

    def scores(self, pack: Any, encoded: tuple[np.ndarray, float], sel) -> np.ndarray:
        vec, offset = encoded
        vec = np.asarray(vec, dtype=np.float64)
        offset = float(offset)
        rows = select(pack.rows, sel)
        rhs = select(pack.rhs, sel)
        limit = select(pack.limit, sel)
        n = rows.shape[0]
        out = np.empty(n, dtype=np.float64)
        for start in range(0, n, BLOCK_ROWS):
            blk = slice(start, min(n, start + BLOCK_ROWS))
            self._block_scores(rows, rhs, limit, pack.sense, vec, offset, blk, out)
        return out

    def sweep(
        self,
        pack: Any,
        encoded: tuple[np.ndarray, float],
        sel,
        weights: Optional[np.ndarray] = None,
        need_total: bool = True,
        log_weights: Optional[np.ndarray] = None,
        log_shift: float = 0.0,
    ) -> SweepStats:
        vec, offset = encoded
        vec = np.asarray(vec, dtype=np.float64)
        offset = float(offset)
        sense = pack.sense
        fancy = isinstance(sel, np.ndarray)
        if self.use_float32:
            mirror = _float32_mirror(pack)
            rows32 = select(mirror.rows, sel)
            rhs32 = select(mirror.rhs, sel)
            limit32 = select(mirror.limit, sel)
            norm32 = select(mirror.norm1, sel)
            gmag32 = select(mirror.gmag, sel)
            vec32 = vec.astype(np.float32)
            off32 = np.float32(offset)
            vmax32 = np.float32(np.max(np.abs(vec))) if vec.size else np.float32(0.0)
            gamma = _band_gamma(pack.rows.shape[1])
            gvmax32 = np.float32(gamma * vmax32)
            goff32 = np.float32(gamma * np.float32(abs(offset)) + _BAND_FLOOR)
            n = rows32.shape[0]
            # float64 arrays stay un-gathered for fancy selectors: only the
            # (few) band candidates are re-fetched at full precision.
            rows64 = None if fancy else select(pack.rows, sel)
            rhs64 = None if fancy else select(pack.rhs, sel)
            limit64 = None if fancy else select(pack.limit, sel)
        else:
            rows64 = select(pack.rows, sel)
            rhs64 = select(pack.rhs, sel)
            limit64 = select(pack.limit, sel)
            n = rows64.shape[0]

        w = weights
        # Log-space weights: exponentiate block-by-block into a scratch
        # buffer while the block is cache-resident, instead of materialising
        # the full exp(log_weights - log_shift) vector.  np.exp is
        # element-wise, so per-row scaled values equal the reference's.
        logw = log_weights
        blocklen = min(BLOCK_ROWS, max(n, 1))
        wbuf = np.empty(blocklen, dtype=np.float64) if logw is not None else None
        if self.use_float32:
            # Every per-block float32 temporary lives in one of these
            # preallocated scratch buffers: at ~150 blocks per 10^7-row
            # sweep, per-block allocations would otherwise be a measurable
            # fraction of the pass.
            s32buf = np.empty(blocklen, dtype=np.float32)
            bandbuf = np.empty(blocklen, dtype=np.float32)
            candbuf = np.empty(blocklen, dtype=bool)
            finbuf = np.empty(blocklen, dtype=bool)
        mask = np.empty(n, dtype=bool)
        count = 0
        violated = 0.0
        total = 0.0
        for start in range(0, n, BLOCK_ROWS):
            stop = min(n, start + BLOCK_ROWS)
            blk = slice(start, stop)
            m = stop - start
            if logw is not None:
                w_scratch = wbuf[:m]
                np.subtract(logw[blk], log_shift, out=w_scratch)
                np.exp(w_scratch, out=w_scratch)
            if self.use_float32:
                # The float32 association differs from the reference's
                # (in-place scalar add instead of a fused offset-rhs temp);
                # the band's safety factor covers the extra rounding, and
                # only certified signs — not the f32 values — are reported.
                s32 = s32buf[:m]
                np.matmul(rows32[blk], vec32, out=s32)
                np.subtract(s32, rhs32[blk], out=s32)
                s32 += off32
                if sense < 0:
                    np.negative(s32, out=s32)
                s32 -= limit32[blk]
                band = bandbuf[:m]
                np.multiply(norm32[blk], gvmax32, out=band)
                band += gmag32[blk]
                band += goff32
                mask_blk = mask[blk]
                np.greater(s32, np.float32(0.0), out=mask_blk)
                cand = candbuf[:m]
                np.abs(s32, out=s32)
                np.less_equal(s32, band, out=cand)
                fin = finbuf[:m]
                np.isfinite(s32, out=fin)
                np.logical_not(fin, out=fin)
                np.logical_or(cand, fin, out=cand)
                if cand.any():
                    ci = np.flatnonzero(cand)
                    if rows64 is None:
                        gidx = sel[blk][ci]
                        sub = pack.rows[gidx] @ vec
                        sub += offset - pack.rhs[gidx]
                        if sense < 0:
                            np.negative(sub, out=sub)
                        sub -= pack.limit[gidx]
                    else:
                        sub = rows64[blk][ci] @ vec
                        sub += offset - rhs64[blk][ci]
                        if sense < 0:
                            np.negative(sub, out=sub)
                        sub -= limit64[blk][ci]
                    mask_blk[ci] = sub > 0.0
            else:
                margins = rows64[blk] @ vec
                margins += offset - rhs64[blk]
                if sense < 0:
                    np.negative(margins, out=margins)
                margins -= limit64[blk]
                mask_blk = mask[blk]
                np.greater(margins, 0.0, out=mask_blk)
            blk_count = int(np.count_nonzero(mask_blk))
            count += blk_count
            if w is None and logw is None:
                violated += float(blk_count)
                if need_total:
                    total += float(stop - start)
            else:
                w_blk = w_scratch if logw is not None else w[blk]
                if blk_count:
                    # where= sums the masked weights without materialising
                    # the gathered subset (same elements, pairwise order
                    # differs — the sanctioned sum exception).
                    violated += float(np.sum(w_blk, where=mask_blk))
                if need_total:
                    total += float(w_blk.sum())
        return SweepStats(
            mask=mask,
            count=count,
            violated_weight=violated,
            total_weight=total if need_total else None,
        )

    def count_matrix(
        self, pack: Any, vecs: np.ndarray, offsets: np.ndarray, sel
    ) -> np.ndarray:
        # Pure blocked float64: multi-witness counts are exponent data for the
        # implicit-weight substrates, where a certified pass per witness
        # column buys little — the win here is avoiding the (n, W) margin
        # matrix temporaries.
        rows = select(pack.rows, sel)
        rhs = select(pack.rhs, sel)
        limit = select(pack.limit, sel)
        sense = pack.sense
        n = rows.shape[0]
        counts = np.empty(n, dtype=np.int64)
        for start in range(0, n, BLOCK_ROWS):
            blk = slice(start, min(n, start + BLOCK_ROWS))
            margins = rows[blk] @ vecs
            margins += offsets[None, :] - rhs[blk][:, None]
            if sense < 0:
                np.negative(margins, out=margins)
            counts[blk] = (margins > limit[blk][:, None]).sum(axis=1)
        return counts

    # ------------------------------------------------------------------ #
    # Linear-algebra / scan primitives
    # ------------------------------------------------------------------ #

    def solve_many(self, mats: np.ndarray, rhs: np.ndarray) -> np.ndarray:
        mats = np.asarray(mats, dtype=np.float64)
        rhs = np.asarray(rhs, dtype=np.float64)
        if mats.shape[0] == 0:
            return np.empty(rhs.shape, dtype=np.float64)
        # One batched LAPACK call over the whole stack; same per-matrix
        # factorisation as the looped reference, so solutions are bit-equal.
        return np.linalg.solve(mats, rhs[..., None])[..., 0]

    def first_violator(
        self, a: np.ndarray, b: np.ndarray, x: np.ndarray, eps: float
    ) -> Optional[int]:
        n = a.shape[0]
        for start in range(0, n, BLOCK_ROWS):
            blk = slice(start, min(n, start + BLOCK_ROWS))
            slack = a[blk] @ x
            slack -= b[blk]
            violated = slack > eps
            if violated.any():
                return start + int(np.argmax(violated))
        return None

    # ------------------------------------------------------------------ #
    # Sampling-side element-wise kernels
    # ------------------------------------------------------------------ #

    def gumbel_top_k(
        self, log_weights: np.ndarray, size: int, gen: np.random.Generator
    ) -> np.ndarray:
        arr = log_weights
        n = arr.size
        if n == 0:
            raise ValueError("total weight must be positive")
        lo = np.min(arr)
        if not lo > -np.inf:
            # Zero weights (or NaNs) present: take the reference path, which
            # filters them out before keying.
            return NumpyBackend.gumbel_top_k(self, arr, size, gen)
        size = min(size, n)
        if size == 0:
            return np.empty(0, dtype=int)
        if size >= n:
            gen.random(n)  # keep the uniform stream aligned with the reference
            return np.arange(n)
        u = gen.random(n)
        if bool(np.max(arr) == lo):
            # Uniform weights (every draw before the first boost): the key
            # arr + g(u) is a strictly increasing function of u alone, so
            # selecting on the raw uniforms — seeded by a fully-ranked
            # prefix, then two staged filter passes that keep only rows
            # above the running size-th best — returns the reference's
            # top-``size`` set without any keying passes.
            seed_len = min(n, max(BLOCK_ROWS, 4 * size))
            pool_idx = np.arange(seed_len)
            pool_rank = u[:seed_len]
            top = np.argpartition(pool_rank, seed_len - size)[seed_len - size :]
            pool_idx, pool_rank = pool_idx[top], pool_rank[top]
            start = seed_len
            while start < n:
                stop = n if start > seed_len else min(n, 16 * seed_len)
                cand = np.flatnonzero(u[start:stop] >= pool_rank.min())
                if cand.size:
                    cand += start
                    pool_idx = np.concatenate([pool_idx, cand])
                    pool_rank = np.concatenate([pool_rank, u[cand]])
                    if size < pool_idx.size:
                        top = np.argpartition(pool_rank, pool_idx.size - size)[
                            pool_idx.size - size :
                        ]
                        pool_idx, pool_rank = pool_idx[top], pool_rank[top]
                start = stop
            return np.sort(pool_idx)
        # Same uniform stream and the same key values as the reference, but
        # keyed block-by-block in a cache-resident scratch buffer and
        # selected by a running threshold instead of per-block partitions:
        # the first block is partitioned once to seed a pool of the best
        # ``size`` keys; every later block only compares its keys against
        # the pool's current size-th best (any global top-``size`` key beats
        # it, so the filter keeps a superset) and the few survivors are
        # merged into the pool.  One final partition of the pool recovers
        # exactly the reference's global top-``size``.
        block = max(BLOCK_ROWS, 4 * size)
        kbuf = np.empty(min(block, n), dtype=np.float64)
        pool_idx: Optional[np.ndarray] = None
        pool_keys: Optional[np.ndarray] = None
        threshold = -np.inf
        for start in range(0, n, block):
            stop = min(n, start + block)
            keys = kbuf[: stop - start]
            np.maximum(u[start:stop], _TINY_UNIFORM, out=keys)
            np.log(keys, out=keys)
            np.negative(keys, out=keys)
            np.log(keys, out=keys)
            np.subtract(arr[start:stop], keys, out=keys)
            m = stop - start
            if pool_idx is None:
                if size < m:
                    top = np.argpartition(keys, m - size)[m - size :]
                    pool_idx = top + start
                    pool_keys = keys[top]
                    threshold = float(pool_keys.min())
                else:
                    pool_idx = np.arange(start, stop)
                    pool_keys = keys.copy()
                continue
            cand = np.flatnonzero(keys >= threshold)
            if cand.size:
                pool_idx = np.concatenate([pool_idx, cand + start])
                pool_keys = np.concatenate([pool_keys, keys[cand]])
                if pool_idx.size > 4 * size:
                    top = np.argpartition(pool_keys, pool_idx.size - size)[
                        pool_idx.size - size :
                    ]
                    pool_idx, pool_keys = pool_idx[top], pool_keys[top]
                    threshold = float(pool_keys.min())
        if size < pool_idx.size:
            top = np.argpartition(pool_keys, pool_idx.size - size)[
                pool_idx.size - size :
            ]
            pool_idx = pool_idx[top]
        return np.sort(pool_idx)

    def exp_shift(self, values: np.ndarray, shift: float) -> np.ndarray:
        out = values - shift
        np.exp(out, out=out)
        return out
