"""Shared contracts of the kernel layer.

A *kernel backend* implements the small set of array primitives that dominate
the solver's wall-clock at large ``n``: the fused violation sweep (one pass
producing mask, count, and weight sums), full-precision score evaluation,
multi-witness violation counting, batched small linear solves, Seidel's
first-violator scan, and the two sampling-side element-wise kernels (Gumbel
top-k keys and the shifted exponential).  Backends are interchangeable: the
``numpy`` reference backend reproduces the pre-kernel-layer implementation
operation for operation, and every other backend must return **bit-identical
masks, counts, scores, and sample indices** on the same inputs.  Weight
*sums* are the one sanctioned exception: blocked accumulation may differ from
the reference's single ``np.sum`` in the last few ulps (the success test
``w(V)/w(S) <= eps`` is a tolerance comparison, so this never changes
behaviour in practice).

Backends receive the :class:`~repro.core.lptype.ConstraintPack` duck-typed:
they rely only on ``rows`` / ``rhs`` / ``limit`` / ``sense`` plus the
``kernel_cache()`` dict for per-pack precomputed arrays (e.g. the float32
mirrors of the ``fused`` backend).  The kernel layer itself imports nothing
from ``repro.core`` so it can never participate in an import cycle.

Row selection is passed as a *selector*: ``None`` (all rows), a ``slice``
(a contiguous range — sliced as a view, no copy), or an int index array
(a gather).  :func:`repro.core.lptype._as_selector` produces these.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass
from typing import Any, Optional, Sequence

import numpy as np

__all__ = ["SweepStats", "KernelBackend", "select", "selector_length"]

#: Smallest positive double — uniform draws are clamped here before ``log``
#: (mirrors ``repro.core.sampling._TINY_UNIFORM``; duplicated so the kernel
#: layer stays import-free of ``repro.core``).
_TINY_UNIFORM = float(np.nextafter(0.0, 1.0))

#: Row-block length of the blocked kernels.  Large enough that the Python /
#: dispatch overhead of the block loop is negligible against the array work
#: (~150 blocks at n = 10^7), small enough that a float32 row block plus its
#: per-block temporaries stay cache-resident for the dimensions this
#: repository runs (d <= ~16: 65536 rows x 16 coefficients x 4 bytes = 4 MB).
#: Block starts are multiples of 65536, so every block pointer keeps the base
#: array's 64-byte alignment class for any d and the blocked matmul stays
#: bit-identical to the full one.
BLOCK_ROWS = 65536


def select(arr: np.ndarray, sel) -> np.ndarray:
    """Apply a selector: ``None`` -> the array, slice -> view, index -> gather."""
    return arr if sel is None else arr[sel]


def selector_length(sel, n: int) -> int:
    """Number of rows a selector picks out of ``n``."""
    if sel is None:
        return int(n)
    if isinstance(sel, slice):
        start, stop, _ = sel.indices(n)
        return max(0, stop - start)
    return int(sel.size)


@dataclass(frozen=True)
class SweepStats:
    """Result of one fused violation sweep.

    ``mask`` is the boolean violation mask over the selected rows; ``count``
    its popcount; ``violated_weight`` the sum of the caller's weights over
    the violated rows (the violator *count* when no weights were given);
    ``total_weight`` the full weight sum, or ``None`` when the caller asked
    to skip it (``need_total=False``).
    """

    mask: np.ndarray
    count: int
    violated_weight: float
    total_weight: Optional[float]


class KernelBackend(abc.ABC):
    """One implementation of the hot-loop array primitives.

    The reference semantics of every method are fixed by
    :class:`repro.kernels.reference.NumpyBackend`; see the module docstring
    for which outputs must match bit for bit.
    """

    #: Registry name (``numpy``, ``fused``, ``fused64``, ``numba``).
    name: str = "?"

    # ------------------------------------------------------------------ #
    # Constraint-pack primitives
    # ------------------------------------------------------------------ #

    @abc.abstractmethod
    def scores(self, pack: Any, encoded: tuple[np.ndarray, float], sel) -> np.ndarray:
        """Full-precision violation scores of the selected rows (positive = violated)."""

    @abc.abstractmethod
    def sweep(
        self,
        pack: Any,
        encoded: tuple[np.ndarray, float],
        sel,
        weights: Optional[np.ndarray] = None,
        need_total: bool = True,
        log_weights: Optional[np.ndarray] = None,
        log_shift: float = 0.0,
    ) -> SweepStats:
        """One fused pass: violation mask, count, and weight sums.

        ``weights`` (when given) is aligned with the *selected* rows.
        ``log_weights`` is the log-space alternative (mutually exclusive
        with ``weights``): the effective weight of row ``j`` is
        ``exp(log_weights[j] - log_shift)``.  Passing logs lets a blocked
        backend exponentiate cache-resident blocks inside the sweep instead
        of forcing the caller to materialise the scaled vector; the
        reference backend materialises ``exp(log_weights - log_shift)``
        up front (the historical implementation), so per-element scaled
        values are bit-identical across backends and only the *sums* are
        subject to the usual accumulation-order exception.
        """

    @abc.abstractmethod
    def count_matrix(
        self,
        pack: Any,
        vecs: np.ndarray,
        offsets: np.ndarray,
        sel,
    ) -> np.ndarray:
        """Per selected row, how many of the encoded witnesses it violates.

        ``vecs`` has shape ``(d, W)`` and ``offsets`` shape ``(W,)``.
        """

    # ------------------------------------------------------------------ #
    # Linear-algebra / scan primitives
    # ------------------------------------------------------------------ #

    @abc.abstractmethod
    def solve_many(self, mats: np.ndarray, rhs: np.ndarray) -> np.ndarray:
        """Solve a stack of same-shape square systems ``mats[i] @ x = rhs[i]``.

        ``mats`` has shape ``(B, m, m)``, ``rhs`` shape ``(B, m)``; returns
        shape ``(B, m)``.  Raises ``np.linalg.LinAlgError`` if any system is
        singular.
        """

    @abc.abstractmethod
    def first_violator(
        self, a: np.ndarray, b: np.ndarray, x: np.ndarray, eps: float
    ) -> Optional[int]:
        """Index of the first row with ``a[j] . x - b[j] > eps``, else ``None``."""

    # ------------------------------------------------------------------ #
    # Sampling-side element-wise kernels
    # ------------------------------------------------------------------ #

    @abc.abstractmethod
    def gumbel_top_k(
        self, log_weights: np.ndarray, size: int, gen: np.random.Generator
    ) -> np.ndarray:
        """Gumbel top-k sample of distinct indices, ascending.

        Must consume the generator's uniform stream exactly as the reference
        does and return bit-identical indices.
        """

    @abc.abstractmethod
    def exp_shift(self, values: np.ndarray, shift: float) -> np.ndarray:
        """``exp(values - shift)`` (the max-normalised weight vector)."""

    # ------------------------------------------------------------------ #

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<KernelBackend {self.name}>"
