"""Optional ``numba`` backend: JIT-compiled fused loops.

Auto-detected at import time; when numba is not importable (it is an
optional accelerator, never a dependency) :data:`NUMBA_AVAILABLE` is
``False``, the backend is simply not registered, and resolution falls back
to the guaranteed ``numpy`` reference.  The kernels are straightforward
single-pass loops — the violation sweep fuses score evaluation, masking,
and both weight accumulations into one traversal with no temporaries at
all.  Sampling-side kernels and the batched solves delegate to the blocked
NumPy implementations (LAPACK is already the right tool there).
"""

from __future__ import annotations

from typing import Any, Optional

import numpy as np

from .base import SweepStats, select
from .fused import FusedBackend

__all__ = ["NUMBA_AVAILABLE", "NumbaBackend"]

try:  # pragma: no cover - exercised only where numba is installed
    from numba import njit

    NUMBA_AVAILABLE = True
except Exception:  # pragma: no cover - the expected path in the pinned env
    njit = None
    NUMBA_AVAILABLE = False


if NUMBA_AVAILABLE:  # pragma: no cover - exercised only where numba is installed

    @njit(cache=True)
    def _sweep_loop(rows, rhs, limit, sense, vec, offset, weights, use_weights):
        n, d = rows.shape
        mask = np.zeros(n, dtype=np.bool_)
        count = 0
        violated = 0.0
        total = 0.0
        for j in range(n):
            acc = 0.0
            for k in range(d):
                acc += rows[j, k] * vec[k]
            score = acc + (offset - rhs[j])
            if sense < 0:
                score = -score
            score -= limit[j]
            w = weights[j] if use_weights else 1.0
            total += w
            if score > 0.0:
                mask[j] = True
                count += 1
                violated += w
        return mask, count, violated, total

    @njit(cache=True)
    def _scores_loop(rows, rhs, limit, sense, vec, offset):
        n, d = rows.shape
        out = np.empty(n, dtype=np.float64)
        for j in range(n):
            acc = 0.0
            for k in range(d):
                acc += rows[j, k] * vec[k]
            score = acc + (offset - rhs[j])
            if sense < 0:
                score = -score
            out[j] = score - limit[j]
        return out

    @njit(cache=True)
    def _count_loop(rows, rhs, limit, sense, vecs, offsets):
        n, d = rows.shape
        w = vecs.shape[1]
        counts = np.zeros(n, dtype=np.int64)
        for j in range(n):
            for t in range(w):
                acc = 0.0
                for k in range(d):
                    acc += rows[j, k] * vecs[k, t]
                margin = acc + (offsets[t] - rhs[j])
                if sense < 0:
                    margin = -margin
                if margin > limit[j]:
                    counts[j] += 1
        return counts

    @njit(cache=True)
    def _first_violator_loop(a, b, x, eps):
        n, d = a.shape
        for j in range(n):
            acc = 0.0
            for k in range(d):
                acc += a[j, k] * x[k]
            if acc - b[j] > eps:
                return j
        return -1


class NumbaBackend(FusedBackend):  # pragma: no cover - optional accelerator
    """JIT loops for the pack primitives; everything else inherits ``fused``."""

    def __init__(self) -> None:
        super().__init__(name="numba", use_float32=False)
        if not NUMBA_AVAILABLE:
            raise RuntimeError("numba is not importable in this environment")

    @staticmethod
    def _gathered(pack: Any, sel):
        rows = np.ascontiguousarray(select(pack.rows, sel))
        rhs = np.ascontiguousarray(select(pack.rhs, sel))
        limit = np.ascontiguousarray(select(pack.limit, sel))
        return rows, rhs, limit

    def scores(self, pack: Any, encoded: tuple[np.ndarray, float], sel) -> np.ndarray:
        vec, offset = encoded
        rows, rhs, limit = self._gathered(pack, sel)
        return _scores_loop(
            rows, rhs, limit, pack.sense, np.asarray(vec, dtype=np.float64), float(offset)
        )

    def sweep(
        self,
        pack: Any,
        encoded: tuple[np.ndarray, float],
        sel,
        weights: Optional[np.ndarray] = None,
        need_total: bool = True,
        log_weights: Optional[np.ndarray] = None,
        log_shift: float = 0.0,
    ) -> SweepStats:
        vec, offset = encoded
        if log_weights is not None:
            weights = np.exp(log_weights - log_shift)
        rows, rhs, limit = self._gathered(pack, sel)
        use_weights = weights is not None
        w = weights if use_weights else np.empty(0, dtype=np.float64)
        mask, count, violated, total = _sweep_loop(
            rows,
            rhs,
            limit,
            pack.sense,
            np.asarray(vec, dtype=np.float64),
            float(offset),
            np.ascontiguousarray(w, dtype=np.float64),
            use_weights,
        )
        return SweepStats(
            mask=mask,
            count=int(count),
            violated_weight=float(violated),
            total_weight=float(total) if need_total else None,
        )

    def count_matrix(
        self, pack: Any, vecs: np.ndarray, offsets: np.ndarray, sel
    ) -> np.ndarray:
        rows, rhs, limit = self._gathered(pack, sel)
        return _count_loop(
            rows,
            rhs,
            limit,
            pack.sense,
            np.ascontiguousarray(vecs, dtype=np.float64),
            np.ascontiguousarray(offsets, dtype=np.float64),
        )

    def first_violator(
        self, a: np.ndarray, b: np.ndarray, x: np.ndarray, eps: float
    ) -> Optional[int]:
        if a.shape[0] == 0:
            return None
        hit = _first_violator_loop(
            np.ascontiguousarray(a),
            np.ascontiguousarray(b),
            np.ascontiguousarray(x, dtype=np.float64),
            float(eps),
        )
        return None if hit < 0 else int(hit)
