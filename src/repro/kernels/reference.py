"""The ``numpy`` reference backend: the pre-kernel-layer implementation.

Every primitive here reproduces, operation for operation, what the solver did
before the kernel layer existed (full-array matmuls with materialised margin
temporaries, mask-then-index-then-sum weight accumulation, per-system
``np.linalg.solve`` loops).  It is the correctness anchor the parity grid
pins the other backends against, and the guaranteed fallback when a
requested backend is unavailable.
"""

from __future__ import annotations

from typing import Any, Optional

import numpy as np

from .base import KernelBackend, SweepStats, _TINY_UNIFORM, select

__all__ = ["NumpyBackend"]


class NumpyBackend(KernelBackend):
    name = "numpy"

    # ------------------------------------------------------------------ #
    # Constraint-pack primitives
    # ------------------------------------------------------------------ #

    def scores(self, pack: Any, encoded: tuple[np.ndarray, float], sel) -> np.ndarray:
        vec, offset = encoded
        rows = select(pack.rows, sel)
        rhs = select(pack.rhs, sel)
        limit = select(pack.limit, sel)
        margins = rows @ np.asarray(vec, dtype=np.float64) + (float(offset) - rhs)
        if pack.sense < 0:
            margins = -margins
        return margins - limit

    def sweep(
        self,
        pack: Any,
        encoded: tuple[np.ndarray, float],
        sel,
        weights: Optional[np.ndarray] = None,
        need_total: bool = True,
        log_weights: Optional[np.ndarray] = None,
        log_shift: float = 0.0,
    ) -> SweepStats:
        if log_weights is not None:
            # Historical form: materialise the max-normalised weight vector,
            # then mask-and-sum it like any explicit weight array.
            weights = np.exp(log_weights - log_shift)
        scores = self.scores(pack, encoded, sel)
        mask = scores > 0.0
        count = int(np.count_nonzero(mask))
        if weights is None:
            violated = float(count)
            total = float(mask.size) if need_total else None
        else:
            violated = float(weights[mask].sum())
            total = float(weights.sum()) if need_total else None
        return SweepStats(
            mask=mask, count=count, violated_weight=violated, total_weight=total
        )

    def count_matrix(
        self, pack: Any, vecs: np.ndarray, offsets: np.ndarray, sel
    ) -> np.ndarray:
        rows = select(pack.rows, sel)
        rhs = select(pack.rhs, sel)
        limit = select(pack.limit, sel)
        margins = rows @ vecs + (offsets[None, :] - rhs[:, None])
        if pack.sense < 0:
            margins = -margins
        return (margins > limit[:, None]).sum(axis=1).astype(np.int64)

    # ------------------------------------------------------------------ #
    # Linear-algebra / scan primitives
    # ------------------------------------------------------------------ #

    def solve_many(self, mats: np.ndarray, rhs: np.ndarray) -> np.ndarray:
        mats = np.asarray(mats, dtype=np.float64)
        rhs = np.asarray(rhs, dtype=np.float64)
        out = np.empty(rhs.shape, dtype=np.float64)
        for i in range(mats.shape[0]):
            out[i] = np.linalg.solve(mats[i], rhs[i])
        return out

    def first_violator(
        self, a: np.ndarray, b: np.ndarray, x: np.ndarray, eps: float
    ) -> Optional[int]:
        if a.shape[0] == 0:
            return None
        slack = a @ x - b
        violated = slack > eps
        if not violated.any():
            return None
        return int(np.argmax(violated))

    # ------------------------------------------------------------------ #
    # Sampling-side element-wise kernels
    # ------------------------------------------------------------------ #

    def gumbel_top_k(
        self, log_weights: np.ndarray, size: int, gen: np.random.Generator
    ) -> np.ndarray:
        arr = log_weights
        positive = np.flatnonzero(arr > -np.inf)
        if positive.size == 0:
            raise ValueError("total weight must be positive")
        size = min(size, positive.size)
        if size == 0:
            return np.empty(0, dtype=int)
        sub = arr[positive]
        u = np.maximum(gen.random(sub.size), _TINY_UNIFORM)
        keys = sub - np.log(-np.log(u))
        if size < positive.size:
            top = np.argpartition(keys, positive.size - size)[positive.size - size :]
        else:
            top = np.arange(positive.size)
        return np.sort(positive[top])

    def exp_shift(self, values: np.ndarray, shift: float) -> np.ndarray:
        return np.exp(values - shift)
