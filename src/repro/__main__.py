"""``python -m repro`` entry point; see :mod:`repro.api.cli`."""

from __future__ import annotations

import sys

from .api.cli import main

if __name__ == "__main__":
    sys.exit(main())
