"""The one front door: ``repro.solve()`` and ``repro.compare_models()``.

``solve(problem, model=..., config=..., **overrides)`` dispatches through the
model registry, so every computation model — and any model registered by
user code — is reached through a single call with a single configuration
vocabulary::

    from repro import solve

    result = solve(problem, model="streaming", r=2, seed=0)
    result = solve(problem, model="coordinator", num_sites=8, seed=0)
    result = solve(problem, model="mpc", delta=0.5, seed=0)

``compare_models`` runs the same instance under several models and returns a
keyed dict of :class:`~repro.core.result.SolveResult` — the shape the
paper's cross-model tables are built from.
"""

from __future__ import annotations

import warnings
from dataclasses import MISSING, fields
from typing import TYPE_CHECKING, Any, Iterable, Mapping, Optional

from ..core.exceptions import ConfigFieldDroppedWarning, InvalidConfigError
from .config import SolverConfig, construct_config
from .registry import ModelSpec, get_model

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..core.lptype import LPTypeProblem
    from ..core.result import SolveResult

__all__ = ["solve", "compare_models", "DEFAULT_COMPARISON_MODELS"]

#: The four models of the paper's theorems, in presentation order.
DEFAULT_COMPARISON_MODELS = ("sequential", "streaming", "coordinator", "mpc")


def _non_default(config: SolverConfig, field_obj: Any) -> bool:
    """Whether one config field was changed away from its declared default."""
    value = getattr(config, field_obj.name)
    default = field_obj.default
    if default is MISSING:
        factory = field_obj.default_factory
        if factory is MISSING:
            return True  # no default at all: every value is caller-chosen
        default = factory()
    if default is None:
        return value is not None
    try:
        return bool(value != default)
    except Exception:  # pragma: no cover - exotic field types
        return True


def build_config(
    spec: ModelSpec,
    config: Optional[SolverConfig],
    overrides: Mapping[str, Any],
    warn_dropped: bool = True,
) -> SolverConfig:
    """Resolve the effective config for one model.

    ``config`` may be ``None`` (defaults), an instance of the model's config
    class (used as-is, with ``overrides`` applied), or any other
    :class:`SolverConfig` — in which case the fields shared with the model's
    config class are carried over (so one base config can seed a
    cross-model comparison).  Fields of the source config that the target
    class does not understand are dropped; when a dropped field was set to
    a non-default value, a :class:`ConfigFieldDroppedWarning` names it
    (``warn_dropped=False`` silences this — ``compare_models`` does, since
    cross-class seeding is its documented contract).  Unknown override keys
    raise :class:`InvalidConfigError` naming the key.
    """
    cls = spec.config_cls
    if config is None:
        base: dict[str, Any] = {}
    elif isinstance(config, SolverConfig):
        if type(config) is cls and not overrides:
            return config
        # Keep only the fields the target config class understands: a richer
        # config (StreamingConfig, say) may seed a model with a narrower one.
        target = {f.name for f in fields(cls)}
        base = {
            f.name: getattr(config, f.name)
            for f in fields(config)
            if f.name in target
        }
        if warn_dropped:
            dropped = [
                f.name
                for f in fields(config)
                if f.name not in target and _non_default(config, f)
            ]
            if dropped:
                warnings.warn(
                    f"seeding {cls.__name__} for model {spec.name!r} from a "
                    f"{type(config).__name__} drops its non-default field(s) "
                    f"{', '.join(map(repr, dropped))}",
                    ConfigFieldDroppedWarning,
                    stacklevel=3,
                )
    else:
        raise InvalidConfigError(
            f"config must be a SolverConfig (ideally {cls.__name__}) or None, "
            f"got {type(config).__name__}"
        )
    base.update(overrides)
    return construct_config(cls, base)


def solve(
    problem: "LPTypeProblem",
    model: str = "streaming",
    config: Optional[SolverConfig] = None,
    **overrides: Any,
) -> "SolveResult":
    """Solve an LP-type problem in the named computation model.

    Parameters
    ----------
    problem:
        Any :class:`~repro.core.lptype.LPTypeProblem` (LP, MEB, SVM, QP, or
        a user-defined subclass).
    model:
        A registered model name — see :func:`repro.available_models` (the
        built-ins are ``sequential``, ``streaming``, ``coordinator``,
        ``mpc``, plus the baselines ``exact``, ``single_pass_streaming``,
        ``ship_all_coordinator``, and ``classic_reweighting``).
    config:
        Optional typed configuration (:class:`SolverConfig` or the model's
        subclass).  ``None`` uses the model's defaults.
    **overrides:
        Individual config fields to override, e.g. ``r=3, seed=0`` or
        ``num_sites=8``.  Unknown keys raise
        :class:`~repro.core.exceptions.InvalidConfigError`.

    Returns
    -------
    SolveResult
        The optimum, witness, basis, iteration trace, and the resource
        usage in the model's currencies (see
        :func:`repro.describe_model`).

    Notes
    -----
    This is a thin shim over an *ephemeral* :class:`~repro.api.session.Session`
    (one solve, no warm tracking) and is bit-identical to the historical
    one-shot behaviour; open a session explicitly (``repro.session(...)``)
    to reuse transports and warm state across solves.
    """
    from .session import Session

    with Session(model=model, config=config, warm_tracking=False, **overrides) as sess:
        return sess.solve(problem)


def compare_models(
    problem: "LPTypeProblem",
    models: Optional[Iterable[str]] = None,
    config: Optional[SolverConfig] = None,
    **overrides: Any,
) -> dict[str, "SolveResult"]:
    """Solve one instance under several models; return ``{name: result}``.

    ``models`` defaults to the four models of the paper's theorems.
    ``config`` and ``overrides`` are resolved per model exactly as in
    :func:`solve`, except that override keys only need to be understood by
    *some* selected model (``num_sites`` silently does not apply to the
    streaming run, say); a key unknown to every selected model still raises
    :class:`InvalidConfigError`.
    """
    from .session import Session

    names = tuple(models) if models is not None else DEFAULT_COMPARISON_MODELS
    specs = [get_model(name) for name in names]
    supported: set[str] = set()
    for spec in specs:
        supported.update(spec.config_keys)
    unknown = sorted(set(overrides) - supported)
    if unknown:
        raise InvalidConfigError(
            f"unknown config key(s) {', '.join(map(repr, unknown))}; no model in "
            f"{list(names)} supports them (supported keys: {', '.join(sorted(supported))})"
        )
    results: dict[str, "SolveResult"] = {}
    for spec in specs:
        local = {k: v for k, v in overrides.items() if k in spec.config_keys}
        # One ephemeral session per model; cross-class config seeding is the
        # documented contract here, so dropped-field warnings are silenced.
        with Session(
            model=spec.name,
            config=config,
            warm_tracking=False,
            warn_dropped=False,
            **local,
        ) as sess:
            results[spec.name] = sess.solve(problem)
    return results
