"""Model / problem registry behind the :func:`repro.solve` front door.

The paper's central message is that ONE meta-algorithm instantiates in every
computation model; the registry is the API-level mirror of that statement.
Each computation model (sequential, streaming, coordinator, MPC, and the
baselines) registers a :class:`ModelSpec` describing

* how to run it (a ``runner(problem, config) -> SolveResult`` adapter over
  the model's driver),
* which typed configuration it accepts (a
  :class:`~repro.api.config.SolverConfig` subclass, whose fields double as
  the model's supported configuration keys), and
* the resource currencies its :class:`~repro.core.result.ResourceUsage`
  is measured in (passes, rounds, communication bits, machine load, ...).

Problem families (LP, MEB, SVM, QP) register a :class:`ProblemSpec` the same
way.  The built-in models and problems self-register when their defining
modules are imported; :func:`_ensure_builtins` lazily imports those modules
so the registry is complete even when ``repro.api`` is imported in
isolation.

Registering a new model or problem from user code::

    from repro.api import SolverConfig, register_model

    @register_model(
        "my-model",
        config_cls=SolverConfig,
        description="my substrate binding of the Clarkson engine",
        currencies=("rounds",),
    )
    def _run_my_model(problem, config):
        ...
        return SolveResult(...)

    result = repro.solve(problem, model="my-model")
"""

from __future__ import annotations

import dataclasses
import importlib
import warnings
from dataclasses import dataclass
from typing import TYPE_CHECKING, Any, Callable, Mapping

from .. import kernels
from ..core.exceptions import RegistryError

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, typing only
    from ..core.lptype import LPTypeProblem
    from ..core.result import SolveResult
    from .config import SolverConfig

__all__ = [
    "ModelSpec",
    "ProblemSpec",
    "SessionSpec",
    "register_model",
    "register_problem",
    "unregister_model",
    "unregister_problem",
    "get_model",
    "get_problem",
    "available_models",
    "available_problems",
    "describe_model",
    "describe_problem",
]


@dataclass(frozen=True)
class SessionSpec:
    """Session-level capabilities of one registered model.

    Derived from the :class:`ModelSpec` and surfaced by
    :func:`describe_model` under the ``"session"`` key, so callers can check
    *before* opening a session whether a model supports warm re-solves
    (``repro.session(...).resolve_with``), streaming ingestion handles, and
    which transports its driver can execute on.
    """

    warm_restart: bool
    ingest: bool
    transports: tuple[str, ...]

    def as_dict(self) -> dict[str, Any]:
        return {
            "warm_restart": self.warm_restart,
            "ingest": self.ingest,
            "transports": list(self.transports),
        }


@dataclass(frozen=True)
class ModelSpec:
    """One registered computation model.

    Attributes
    ----------
    name:
        Registry key, e.g. ``"streaming"``.
    runner:
        ``runner(problem, config) -> SolveResult`` adapter that binds the
        model's driver to the typed config.
    config_cls:
        The :class:`~repro.api.config.SolverConfig` subclass the model
        accepts; its dataclass fields are the supported config keys.
    description:
        One-line human description (shown by :func:`describe_model`).
    currencies:
        The ``ResourceUsage`` fields that are meaningful for this model.
    replaces:
        Name of the legacy entry point this model supersedes, if any.
    transports:
        The :class:`~repro.api.config.TransportConfig` kinds the model's
        driver can execute on (every model runs in-process; the distributed
        models additionally run on real worker processes).
    warm_runner:
        Optional ``warm_runner(problem, config, warm_witnesses) ->
        SolveResult`` adapter: runs the driver with its weight state seeded
        from the given successful-iteration basis witnesses (Section 3.2's
        model-independent weight representation) and reports reuse stats in
        ``SolveResult.warm``.  Models without one cannot warm-restart.
    capabilities:
        Session-level capability tags (``"warm_restart"``, ``"ingest"``)
        surfaced through :class:`SessionSpec` / :func:`describe_model`.
    """

    name: str
    runner: Callable[["LPTypeProblem", "SolverConfig"], "SolveResult"]
    config_cls: type
    description: str = ""
    currencies: tuple[str, ...] = ()
    replaces: str | None = None
    transports: tuple[str, ...] = ("inprocess",)
    warm_runner: Callable[..., "SolveResult"] | None = None
    capabilities: tuple[str, ...] = ()

    @property
    def config_keys(self) -> tuple[str, ...]:
        """Names of the configuration fields this model understands."""
        return tuple(f.name for f in dataclasses.fields(self.config_cls))

    @property
    def session_spec(self) -> SessionSpec:
        """The session-level capability record of this model."""
        return SessionSpec(
            warm_restart=self.warm_runner is not None
            and "warm_restart" in self.capabilities,
            ingest="ingest" in self.capabilities,
            transports=self.transports,
        )


@dataclass(frozen=True)
class ProblemSpec:
    """One registered LP-type problem family.

    Attributes
    ----------
    name:
        Registry key, e.g. ``"linear_program"``.
    factory:
        The problem class (or a callable constructing instances).
    description:
        One-line human description.
    tags:
        Free-form labels (``"geometry"``, ``"learning"``, ...).
    """

    name: str
    factory: Callable[..., Any]
    description: str = ""
    tags: tuple[str, ...] = ()


_MODELS: dict[str, ModelSpec] = {}
_PROBLEMS: dict[str, ProblemSpec] = {}
_BUILTINS_LOADED = False


def _ensure_builtins() -> None:
    """Import the modules whose import side-effect registers the built-ins."""
    global _BUILTINS_LOADED
    if _BUILTINS_LOADED:
        return
    for module in ("repro.api.builtin", "repro.algorithms", "repro.problems"):
        importlib.import_module(module)
    # Only flag success once every import landed, so a transient import
    # failure is retried instead of leaving the registry silently incomplete.
    _BUILTINS_LOADED = True


def register_model(
    name: str,
    runner: Callable[..., Any] | None = None,
    *,
    config_cls: type,
    description: str = "",
    currencies: tuple[str, ...] = (),
    replaces: str | None = None,
    transports: tuple[str, ...] = ("inprocess",),
    warm_runner: Callable[..., Any] | None = None,
    capabilities: tuple[str, ...] = (),
) -> Callable[..., Any]:
    """Register a computation model; usable as a decorator on its runner.

    Raises :class:`RegistryError` if ``name`` is already registered.
    Returns the runner unchanged so the decorated function stays usable.
    """

    def _register(fn: Callable[..., Any]) -> Callable[..., Any]:
        if name in _MODELS:
            raise RegistryError(f"model {name!r} is already registered")
        _MODELS[name] = ModelSpec(
            name=name,
            runner=fn,
            config_cls=config_cls,
            description=description,
            currencies=tuple(currencies),
            replaces=replaces,
            transports=tuple(transports),
            warm_runner=warm_runner,
            capabilities=tuple(capabilities),
        )
        return fn

    if runner is not None:
        return _register(runner)
    return _register


def register_problem(
    name: str,
    factory: Callable[..., Any] | None = None,
    *,
    description: str = "",
    tags: tuple[str, ...] = (),
) -> Callable[..., Any]:
    """Register a problem family; usable as a decorator on its factory/class.

    Raises :class:`RegistryError` if ``name`` is already registered.
    """

    def _register(fn: Callable[..., Any]) -> Callable[..., Any]:
        if name in _PROBLEMS:
            raise RegistryError(f"problem {name!r} is already registered")
        _PROBLEMS[name] = ProblemSpec(
            name=name, factory=fn, description=description, tags=tuple(tags)
        )
        return fn

    if factory is not None:
        return _register(factory)
    return _register


def unregister_model(name: str) -> None:
    """Remove a registered model (primarily for tests and plugins)."""
    if _MODELS.pop(name, None) is None:
        raise RegistryError(f"model {name!r} is not registered")


def unregister_problem(name: str) -> None:
    """Remove a registered problem family (primarily for tests and plugins)."""
    if _PROBLEMS.pop(name, None) is None:
        raise RegistryError(f"problem {name!r} is not registered")


def get_model(name: str) -> ModelSpec:
    """Look up a model by name.

    Raises :class:`RegistryError` listing the registered names on a miss.
    """
    _ensure_builtins()
    try:
        return _MODELS[name]
    except KeyError:
        raise RegistryError(
            f"unknown model {name!r}; available models: "
            f"{', '.join(available_models())}"
        ) from None


def get_problem(name: str) -> ProblemSpec:
    """Look up a problem family by name.

    Raises :class:`RegistryError` listing the registered names on a miss.
    """
    _ensure_builtins()
    try:
        return _PROBLEMS[name]
    except KeyError:
        raise RegistryError(
            f"unknown problem {name!r}; available problems: "
            f"{', '.join(available_problems())}"
        ) from None


def available_models() -> tuple[str, ...]:
    """Sorted names of every registered computation model."""
    _ensure_builtins()
    return tuple(sorted(_MODELS))


def available_problems() -> tuple[str, ...]:
    """Sorted names of every registered problem family."""
    _ensure_builtins()
    return tuple(sorted(_PROBLEMS))


def describe_model(name: str) -> Mapping[str, Any]:
    """Introspection record for one model: config keys, defaults, currencies."""
    spec = get_model(name)
    config_fields = {
        f.name: (None if f.default is dataclasses.MISSING else f.default)
        for f in dataclasses.fields(spec.config_cls)
    }
    return {
        "name": spec.name,
        "description": spec.description,
        "currencies": list(spec.currencies),
        "config_class": spec.config_cls.__name__,
        "config_keys": config_fields,
        "replaces": spec.replaces,
        "transports": list(spec.transports),
        "capabilities": list(spec.capabilities),
        "kernel_backends": list(kernels.available_backends()),
        "session": spec.session_spec.as_dict(),
    }


def describe_problem(name: str) -> Mapping[str, Any]:
    """Introspection record for one problem family."""
    spec = get_problem(name)
    return {
        "name": spec.name,
        "description": spec.description,
        "factory": getattr(spec.factory, "__name__", repr(spec.factory)),
        "tags": list(spec.tags),
    }


def warn_legacy_entry_point(old_name: str, model: str) -> None:
    """Emit the deprecation warning for one legacy ``*_solve`` entry point."""
    warnings.warn(
        f"{old_name}() is deprecated; use repro.solve(problem, model={model!r}) "
        f"(or repro.solve_many for batches) instead",
        DeprecationWarning,
        stacklevel=3,
    )
