"""Typed, validated solver configurations for the :func:`repro.solve` facade.

One frozen :class:`SolverConfig` replaces the per-driver kwarg dialects
(``r=``, ``order=``, ``num_sites=``, ``delta=``, ``rng=``, ...).  Every model
accepts either the base class or its model-specific subclass:

=============  ======================  ==============================================
model          config class            extra fields
=============  ======================  ==============================================
sequential     :class:`SolverConfig`   —
streaming      :class:`StreamingConfig`   ``order``
coordinator    :class:`CoordinatorConfig` ``num_sites``, ``partition``, ``cost_model``
MPC            :class:`MPCConfig`         ``delta``, ``num_machines``, ``partition``,
                                          ``cost_model``
=============  ======================  ==============================================

Validation happens at construction time and raises
:class:`~repro.core.exceptions.InvalidConfigError` naming the offending
field, so a bad value fails before any pass, round, or message is spent.
:meth:`SolverConfig.to_parameters` normalises a config into the
:class:`~repro.core.clarkson.ClarksonParameters` the drivers consume, and
:meth:`SolverConfig.practical` builds the constant-free "practical profile"
used by the examples and benchmarks.
"""

from __future__ import annotations

from collections.abc import Mapping
from dataclasses import dataclass, fields
from typing import TYPE_CHECKING, Any, Optional, Sequence

from .. import kernels
from ..core.accounting import BitCostModel
from ..core.clarkson import ClarksonParameters, practical_parameters
from ..core.exceptions import InvalidConfigError
from ..core.rng import SeedLike

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..core.lptype import LPTypeProblem

__all__ = [
    "SolverConfig",
    "StreamingConfig",
    "CoordinatorConfig",
    "MPCConfig",
    "TransportConfig",
]

#: Transport kinds understood by :func:`repro.fabric.resolve_transport`.
TRANSPORT_KINDS = ("inprocess", "process", "tcp")

#: Coordinator topologies understood by the coordinator driver.
COORDINATOR_TOPOLOGIES = ("star", "tree")


@dataclass(frozen=True)
class TransportConfig:
    """How a distributed model's nodes execute and exchange payloads.

    Attributes
    ----------
    kind:
        ``"inprocess"`` (deterministic, zero-copy, the default),
        ``"process"`` (real multiprocess workers), or ``"tcp"`` (node
        agents over real sockets — the :mod:`repro.cluster` subsystem).
        Results are bit-identical across all three: node states, including
        per-node RNGs derived via ``SeedSequence.spawn``, live with the
        workers/agents.
    max_workers:
        Worker-process count for the ``"process"`` kind, or node-agent
        count for ``"tcp"`` (``>= 1``); nodes are pinned to workers by
        ``node_id % max_workers``.
    reuse_pool:
        Whether ``"process"`` solves share one process-wide worker pool
        (start-up cost paid once) or each solve owns a private pool.
        Inside a :class:`~repro.api.session.Session` the distinction moves
        to the session: ``reuse_pool=False`` yields a *session-private*
        pool, spun up once at session creation, reused by every solve of
        the session, and torn down by ``Session.close()`` — the
        amortisation the ``session_amortization`` benchmark measures.
    start_method:
        :mod:`multiprocessing` start method for the workers (``"spawn"``
        inherits nothing and behaves identically on every platform).
    supervised:
        With ``kind="process"``, run the pool under the resilience layer's
        supervisor (:class:`~repro.resilience.supervisor.SupervisedProcessPoolTransport`):
        crash detection, bounded worker restart with journal-replay state
        recovery, and graceful degradation to in-process execution.  Results
        stay bit-identical to the unsupervised pool (and to in-process).
    max_restarts:
        Restart budget per worker failure under supervision (``0`` disables
        restarts: the first crash degrades immediately).
    restart_backoff_s:
        Base delay of the supervisor's exponential restart backoff.
    shared_memory:
        With ``kind="process"``, ship the problem's large constraint arrays
        through POSIX shared-memory segments (zero-copy: every worker maps
        the same pages) and use the pickle-free frame codec for task
        args/results.  Default on; silently degrades to the plain pickle
        wire on platforms without working shared memory.  Results are
        bit-identical either way — ``False`` forces the pickle path (the
        cross-transport determinism grid exercises both).  Ignored by
        ``kind="tcp"``: a shared-memory handle references pages a remote
        host cannot map, so the TCP wire always ships plain pickles.
    listen:
        With ``kind="tcp"``, the ``"host:port"`` the coordinator's
        :class:`~repro.cluster.registry.ClusterRegistry` binds for agent
        registrations (port ``0`` picks a free port).
    addresses:
        With ``kind="tcp"``, explicit ``"host:port"`` addresses of node
        agents started with ``python -m repro node --listen``; the registry
        dials them, one node slot per address, and nothing is spawned.
        Empty (the default) means the transport spawns ``max_workers``
        loopback agents itself.
    spawn_agents:
        With ``kind="tcp"``, force (``True``) or forbid (``False``)
        spawning loopback agents; ``None`` (default) spawns exactly when
        ``addresses`` is empty.
    heartbeat_interval_s:
        With ``kind="tcp"``, how often each agent pushes a heartbeat frame.
    heartbeat_timeout_s:
        With ``kind="tcp"``, silence after which a member turns ``suspect``
        (and, after twice this, ``dead`` — triggering journal-replay
        recovery onto a surviving or respawned agent).
    registration_timeout_s:
        With ``kind="tcp"``, how long a joining member may take to complete
        registration (and how long the transport waits for its spawned
        agents at start-up).
    """

    kind: str = "inprocess"
    max_workers: int = 2
    reuse_pool: bool = True
    start_method: str = "spawn"
    supervised: bool = False
    max_restarts: int = 3
    restart_backoff_s: float = 0.05
    shared_memory: bool = True
    listen: str = "127.0.0.1:0"
    addresses: tuple = ()
    spawn_agents: Optional[bool] = None
    heartbeat_interval_s: float = 0.5
    heartbeat_timeout_s: float = 2.0
    registration_timeout_s: float = 30.0

    def __post_init__(self) -> None:
        if self.kind not in TRANSPORT_KINDS:
            raise InvalidConfigError(
                f"TransportConfig.kind must be one of {TRANSPORT_KINDS} "
                f"(got {self.kind!r})"
            )
        if self.max_workers < 1:
            raise InvalidConfigError(
                f"TransportConfig.max_workers must be >= 1 (got {self.max_workers!r})"
            )
        if self.start_method not in ("spawn", "fork", "forkserver"):
            raise InvalidConfigError(
                "TransportConfig.start_method must be 'spawn', 'fork', or "
                f"'forkserver' (got {self.start_method!r})"
            )
        if self.max_restarts < 0:
            raise InvalidConfigError(
                f"TransportConfig.max_restarts must be >= 0 (got {self.max_restarts!r})"
            )
        if self.restart_backoff_s < 0:
            raise InvalidConfigError(
                "TransportConfig.restart_backoff_s must be >= 0 "
                f"(got {self.restart_backoff_s!r})"
            )
        # JSON overrides hand addresses over as a list; the frozen dataclass
        # wants a hashable tuple of "host:port" strings.
        if not isinstance(self.addresses, tuple):
            if not isinstance(self.addresses, (list, Sequence)) or isinstance(
                self.addresses, (str, bytes)
            ):
                raise InvalidConfigError(
                    "TransportConfig.addresses must be a sequence of "
                    f"'host:port' strings (got {self.addresses!r})"
                )
            object.__setattr__(self, "addresses", tuple(self.addresses))
        for address in self.addresses:
            if not isinstance(address, str) or ":" not in address:
                raise InvalidConfigError(
                    "TransportConfig.addresses entries must be 'host:port' "
                    f"strings (got {address!r})"
                )
        if not isinstance(self.listen, str) or ":" not in self.listen:
            raise InvalidConfigError(
                "TransportConfig.listen must be a 'host:port' string "
                f"(got {self.listen!r})"
            )
        for field_name in (
            "heartbeat_interval_s",
            "heartbeat_timeout_s",
            "registration_timeout_s",
        ):
            if getattr(self, field_name) <= 0:
                raise InvalidConfigError(
                    f"TransportConfig.{field_name} must be > 0 "
                    f"(got {getattr(self, field_name)!r})"
                )


def _coerce_transport(config: Any) -> None:
    """Accept a plain mapping for a config's ``transport`` field.

    The CLI's ``--set transport={"kind": "process", "supervised": true}``
    hands the server a JSON object; coercing it here (in each frozen config's
    ``__post_init__``) keeps every entry path — facade kwargs, server
    overrides, ``construct_config`` — accepting either form.
    """
    value = getattr(config, "transport", None)
    if value is None or isinstance(value, TransportConfig):
        return
    if isinstance(value, Mapping):
        known = {f.name for f in fields(TransportConfig)}
        unknown = sorted(set(value) - known)
        if unknown:
            raise InvalidConfigError(
                f"unknown TransportConfig field(s) {unknown} "
                f"(known: {sorted(known)})"
            )
        object.__setattr__(config, "transport", TransportConfig(**dict(value)))
        return
    raise InvalidConfigError(
        f"{type(config).__name__}.transport must be a TransportConfig or a "
        f"mapping of its fields (got {type(value).__name__})"
    )


@dataclass(frozen=True)
class SolverConfig:
    """Model-independent configuration of one meta-algorithm run.

    Attributes
    ----------
    r:
        The pass/round trade-off parameter of Theorems 1-3 (``>= 1``).
        The MPC model derives its own ``r = ceil(1/delta)`` and ignores this
        field.
    seed:
        Randomness: ``None`` (fresh entropy), an integer, a
        :class:`numpy.random.SeedSequence`, or a generator.  The single seed
        controls every random choice of the run.
    keep_trace:
        Whether to record an :class:`~repro.core.result.IterationRecord` per
        iteration (trace verbosity).
    sample_scale:
        Multiplier on the Lemma 2.2 eps-net sample size (``> 0``).
    failure_probability:
        Per-iteration eps-net failure probability (in ``(0, 1)``).
    boost:
        Violator weight multiplier after a successful iteration; ``None``
        uses the paper's ``n^{1/r}``; explicit values must exceed 1.
    max_iterations:
        Hard iteration budget (``>= 1``; ``None`` derives the Lemma 3.3
        bound).
    basis_cache:
        Whether the engine memoises basis solves of repeated index sets
        within a run (hit/miss counters are reported in
        ``ResourceUsage.basis_cache_hits`` / ``_misses``).
    sample_size:
        Explicit eps-net sample size override (``>= 1``).
    success_threshold:
        Explicit success-test threshold on ``w(V)/w(S)`` (in ``(0, 1)``).
    kernel_backend:
        Kernel backend the run executes on: one of
        :data:`repro.kernels.KNOWN_KERNEL_BACKENDS` (``"numpy"``, ``"fused"``,
        ``"fused64"``, ``"numba"``).  ``None`` (default) defers to the
        ``REPRO_KERNEL_BACKEND`` environment variable and then the registry
        default.  A known backend whose import dependency is missing
        (``"numba"`` without numba installed) falls back to ``"numpy"`` at
        solve time with a one-time warning.
    """

    r: int = 2
    seed: SeedLike = None
    keep_trace: bool = True
    sample_scale: float = 1.0
    failure_probability: float = 1.0 / 3.0
    boost: Optional[float] = None
    max_iterations: Optional[int] = None
    basis_cache: bool = True
    sample_size: Optional[int] = None
    success_threshold: Optional[float] = None
    kernel_backend: Optional[str] = None

    def __post_init__(self) -> None:
        self._check(self.r >= 1, "r", "must be >= 1", self.r)
        self._check(self.sample_scale > 0, "sample_scale", "must be > 0", self.sample_scale)
        self._check(
            0.0 < self.failure_probability < 1.0,
            "failure_probability",
            "must lie in (0, 1)",
            self.failure_probability,
        )
        if self.boost is not None:
            self._check(self.boost > 1.0, "boost", "must be > 1", self.boost)
        if self.max_iterations is not None:
            self._check(
                self.max_iterations >= 1, "max_iterations", "must be >= 1", self.max_iterations
            )
        if self.sample_size is not None:
            self._check(self.sample_size >= 1, "sample_size", "must be >= 1", self.sample_size)
        if self.success_threshold is not None:
            self._check(
                0.0 < self.success_threshold < 1.0,
                "success_threshold",
                "must lie in (0, 1)",
                self.success_threshold,
            )
        if self.kernel_backend is not None:
            # Validate against the *known* names, not the registered ones:
            # "numba" is a legal config on any machine, availability is
            # resolved (with a numpy fallback) at solve time.
            self._check(
                self.kernel_backend in kernels.KNOWN_KERNEL_BACKENDS,
                "kernel_backend",
                f"must be one of {kernels.KNOWN_KERNEL_BACKENDS}",
                self.kernel_backend,
            )

    def _check(self, condition: bool, field_name: str, message: str, value: Any) -> None:
        """Raise :class:`InvalidConfigError` naming the offending field."""
        if not condition:
            raise InvalidConfigError(
                f"{type(self).__name__}.{field_name} {message} (got {value!r})"
            )

    def to_parameters(self) -> ClarksonParameters:
        """Normalise into the :class:`ClarksonParameters` the drivers consume."""
        return ClarksonParameters(
            r=self.r,
            sample_scale=self.sample_scale,
            failure_probability=self.failure_probability,
            boost=self.boost,
            max_iterations=self.max_iterations,
            keep_trace=self.keep_trace,
            basis_cache=self.basis_cache,
            sample_size=self.sample_size,
            success_threshold=self.success_threshold,
            kernel_backend=self.kernel_backend,
        )

    @classmethod
    def practical(
        cls,
        problem: "LPTypeProblem",
        r: int = 2,
        safety: float = 4.0,
        **overrides: Any,
    ) -> "SolverConfig":
        """The constant-free "practical profile" as a typed config.

        Same asymptotics as the paper (samples of ``~ n^{1/r}``, success
        threshold of ``~ 1/n^{1/r}``) with the loose Lemma 2.2 constants
        replaced by Clarkson's sampling bound — see
        :func:`repro.core.clarkson.practical_parameters`.  Extra keyword
        arguments become fields of the returned config (``seed=0``, ...);
        model-specific keys require calling ``practical`` on that model's
        config class (``CoordinatorConfig.practical(problem, num_sites=8)``).
        """
        params = practical_parameters(
            problem, r=r, safety=safety, keep_trace=bool(overrides.pop("keep_trace", True))
        )
        base: dict[str, Any] = dict(
            r=r,
            keep_trace=params.keep_trace,
            sample_size=params.sample_size,
            success_threshold=params.success_threshold,
        )
        base.update(overrides)
        return construct_config(cls, base)


@dataclass(frozen=True)
class StreamingConfig(SolverConfig):
    """Multi-pass streaming configuration (Theorem 1).

    Attributes
    ----------
    order:
        Optional arrival order of the constraints (default: natural order).
    transport:
        Optional :class:`TransportConfig`; with ``kind="process"`` the
        stream reader runs its passes in a worker process.
    """

    order: Optional[Sequence[int]] = None
    transport: Optional[TransportConfig] = None

    def __post_init__(self) -> None:
        super().__post_init__()
        _coerce_transport(self)


@dataclass(frozen=True)
class CoordinatorConfig(SolverConfig):
    """Coordinator-model configuration (Theorem 2).

    Attributes
    ----------
    num_sites:
        Number of sites ``k`` (``>= 1``; ignored if ``partition`` is given).
    partition:
        Optional explicit partition of the constraint indices over the sites.
    cost_model:
        Bit-cost model for the communication accounting (``None``: default
        :class:`BitCostModel`).
    topology:
        ``"star"`` (the classic coordinator model, one round per exchange)
        or ``"tree"`` (sites aggregate through a ``fanout``-ary tree:
        ``ceil(log_fanout k)`` times more rounds, but the coordinator's
        per-round load shrinks from ``k * b`` to ``O(b)`` on combinable
        gathers).
    fanout:
        Arity of the aggregation tree (``>= 2``; only used by ``"tree"``).
    transport:
        Optional :class:`TransportConfig`; with ``kind="process"`` the sites
        run as real worker processes.
    """

    num_sites: int = 4
    partition: Optional[Sequence[Any]] = None
    cost_model: Optional[BitCostModel] = None
    topology: str = "star"
    fanout: int = 2
    transport: Optional[TransportConfig] = None

    def __post_init__(self) -> None:
        super().__post_init__()
        self._check(self.num_sites >= 1, "num_sites", "must be >= 1", self.num_sites)
        self._check(
            self.topology in COORDINATOR_TOPOLOGIES,
            "topology",
            f"must be one of {COORDINATOR_TOPOLOGIES}",
            self.topology,
        )
        self._check(self.fanout >= 2, "fanout", "must be >= 2", self.fanout)
        _coerce_transport(self)


@dataclass(frozen=True)
class MPCConfig(SolverConfig):
    """MPC configuration (Theorem 3).

    Attributes
    ----------
    delta:
        Load exponent in ``(0, 1)``: per-machine load ``O~(n^delta)``,
        ``r = ceil(1/delta)`` iterations (the inherited ``r`` field is
        ignored by this model).
    num_machines:
        Number of machines (``>= 1``; default ``ceil(n^(1-delta))``).
    partition:
        Optional explicit partition of the constraint indices over machines.
    cost_model:
        Bit-cost model for the load accounting.
    transport:
        Optional :class:`TransportConfig`; with ``kind="process"`` the
        machines run as real worker processes.
    """

    delta: float = 0.5
    num_machines: Optional[int] = None
    partition: Optional[Sequence[Any]] = None
    cost_model: Optional[BitCostModel] = None
    transport: Optional[TransportConfig] = None

    def __post_init__(self) -> None:
        super().__post_init__()
        self._check(0.0 < self.delta < 1.0, "delta", "must lie in (0, 1)", self.delta)
        if self.num_machines is not None:
            self._check(
                self.num_machines >= 1, "num_machines", "must be >= 1", self.num_machines
            )
        _coerce_transport(self)


def construct_config(cls: type, values: dict[str, Any]) -> SolverConfig:
    """Instantiate ``cls(**values)``, turning unknown keys into a clear error.

    Shared by the facade, the batch layer, and ``SolverConfig.practical`` so
    that a typo'd configuration key always produces an
    :class:`InvalidConfigError` naming the key and listing the supported
    keys for the config class at hand.
    """
    known = {f.name for f in fields(cls)}
    unknown = sorted(set(values) - known)
    if unknown:
        raise InvalidConfigError(
            f"unknown config key(s) {', '.join(map(repr, unknown))} for "
            f"{cls.__name__}; supported keys: {', '.join(sorted(known))}"
        )
    return cls(**values)
