"""Stateful solver sessions: incremental solving and warm-started re-solves.

A :class:`Session` is the long-lived counterpart of the one-shot
:func:`repro.solve` facade.  It owns, across many solves:

* a resolved :class:`~repro.api.registry.ModelSpec` and a frozen, validated
  config (per-call overrides never mutate the session);
* a long-lived **transport**: with ``TransportConfig(kind="process")`` the
  worker pool is spun up once at session creation and reused by every solve
  (one ``ProcessPoolTransport`` instead of per-call pools), which is where
  the heavy-traffic amortisation comes from;
* a **warm state**: the successful-iteration basis witnesses of the previous
  solve — the model-independent form of the Clarkson weight state
  (Section 3.2: the weight of a constraint is ``boost ** #violated-stored-
  bases``) — plus the certified basis, so
  :meth:`Session.resolve_with`\\ ``(added=..., removed=...)`` re-solves an
  edited instance *incrementally*;
* **ingestion handles** (:meth:`Session.ingest`): stream chunks arrive over
  time through ``feed()`` and are assembled into one instance at
  ``finalize()``.

Warm-restart determinism contract (pinned by ``tests/test_session.py``):
a warm re-solve certifies the **same basis** as a cold solve of the same
edited instance, for every model and transport; ``SolveResult.warm`` records
how much prior state was reused.  Two mechanisms implement it:

* the **fast path** — if the prior optimum still satisfies every constraint
  of the edited instance (one vectorised sweep) and the prior basis
  survived the edit, the basis is re-certified without entering the engine
  loop at all (``warm.fast_path``);
* otherwise the model's registered ``warm_runner`` runs the ordinary
  engine loop with its weight substrate seeded from the carried witnesses,
  typically terminating in far fewer iterations than a cold start.

``repro.solve`` / ``repro.compare_models`` / ``repro.solve_many`` are thin
shims over an *ephemeral* session (one solve, no warm tracking) and remain
bit-identical to their historical behaviour.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Optional, Sequence

import numpy as np

from ..core.budget import ResourceBudget, metered
from ..core.exceptions import InvalidConfigError, SessionError
from ..core.result import ResourceUsage, SolveResult, WarmStats
from ..resilience.faults import recovery_scope
from ..fabric import shm
from ..fabric.transport import (
    ProcessPoolTransport,
    Transport,
    pinned_transport,
    shared_process_transport,
)
from .config import SolverConfig
from .facade import build_config
from .registry import ModelSpec, get_model

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..core.lptype import LPTypeProblem
    from .batch import BatchResult

__all__ = [
    "Session",
    "SessionPool",
    "WarmState",
    "IngestHandle",
    "session",
    "extend_problem",
]


# ---------------------------------------------------------------------- #
# Problem-family adapters: how constraint blocks extend / rebuild the four
# built-in problem classes.  User-defined problems opt in by implementing
# ``with_constraint_changes(keep_indices, added_chunks)``.
# ---------------------------------------------------------------------- #

#: Accepted spellings of the built-in problem families (ingestion handles).
FAMILY_ALIASES = {
    "lp": "linear_program",
    "linear_program": "linear_program",
    "meb": "minimum_enclosing_ball",
    "minimum_enclosing_ball": "minimum_enclosing_ball",
    "svm": "linear_svm",
    "linear_svm": "linear_svm",
    "qp": "quadratic_program",
    "quadratic_program": "quadratic_program",
}


def _as_chunk_list(added: Any) -> list:
    """Normalise the ``added`` argument into a list of constraint blocks.

    An ``ndarray`` or ``tuple`` is one block; a plain ``list`` is a list of
    blocks (ingestion handles feed one block per ``feed()`` call).
    """
    if added is None:
        return []
    if isinstance(added, list):
        return list(added)
    return [added]


def _rows_rhs_chunk(chunk: Any, d: int, what: str) -> tuple[np.ndarray, np.ndarray]:
    """One ``(rows, rhs)`` block: a pair of arrays, or one ``(m, d+1)`` array."""
    if isinstance(chunk, tuple) and len(chunk) == 2:
        rows = np.asarray(chunk[0], dtype=float)
        rhs = np.asarray(chunk[1], dtype=float).reshape(-1)
    else:
        merged = np.atleast_2d(np.asarray(chunk, dtype=float))
        if merged.shape[1] != d + 1:
            raise SessionError(
                f"a {what} constraint block must be a (rows, rhs) pair or an "
                f"(m, {d + 1}) array with the right-hand side in the last "
                f"column; got shape {merged.shape}"
            )
        rows, rhs = merged[:, :d], merged[:, d]
    rows = np.atleast_2d(rows)
    if rows.shape[1] != d or rows.shape[0] != rhs.size:
        raise SessionError(
            f"mismatched {what} block: rows {rows.shape} vs {rhs.size} "
            "right-hand sides"
        )
    return rows, rhs


def _points_chunk(chunk: Any, d: int, what: str) -> np.ndarray:
    points = np.atleast_2d(np.asarray(chunk, dtype=float))
    if points.shape[1] != d:
        raise SessionError(
            f"a {what} block must be an (m, {d}) point array; got shape "
            f"{points.shape}"
        )
    return points


def _labelled_chunk(chunk: Any, d: int) -> tuple[np.ndarray, np.ndarray]:
    if not (isinstance(chunk, tuple) and len(chunk) == 2):
        raise SessionError(
            "an SVM block must be a (points, labels) pair"
        )
    points = _points_chunk(chunk[0], d, "SVM")
    labels = np.asarray(chunk[1], dtype=float).reshape(-1)
    if labels.size != points.shape[0]:
        raise SessionError(
            f"mismatched SVM block: {points.shape[0]} points vs "
            f"{labels.size} labels"
        )
    return points, labels


def extend_problem(
    problem: "LPTypeProblem",
    added: Any = None,
    removed: Optional[Sequence[int]] = None,
) -> tuple["LPTypeProblem", np.ndarray]:
    """Build the edited instance: ``problem`` minus ``removed`` plus ``added``.

    Returns ``(new_problem, keep)`` where ``keep`` is the ascending array of
    surviving original indices: original constraint ``keep[j]`` becomes
    constraint ``j`` of the new instance, and added blocks are appended
    after the survivors.  ``added`` is one constraint block (or a list of
    blocks) in the problem family's native form — ``(rows, rhs)`` for
    LP/QP, a point array for MEB, ``(points, labels)`` for SVM.

    User-defined problems participate by implementing
    ``with_constraint_changes(keep_indices, added_chunks) -> problem``.
    """
    from ..problems import (
        ConvexQuadraticProgram,
        LinearProgram,
        LinearSVM,
        MinimumEnclosingBall,
    )

    n = problem.num_constraints
    keep = np.arange(n, dtype=int)
    if removed is not None:
        removed_idx = np.unique(np.asarray(list(removed), dtype=int))
        if removed_idx.size and (
            removed_idx.min() < 0 or removed_idx.max() >= n
        ):
            raise SessionError(
                f"removed indices must lie in [0, {n}); got "
                f"[{removed_idx.min()}, {removed_idx.max()}]"
            )
        keep = np.setdiff1d(keep, removed_idx)
    chunks = _as_chunk_list(added)

    hook = getattr(problem, "with_constraint_changes", None)
    if hook is not None:
        return hook(keep, chunks), keep

    d = problem.dimension
    if isinstance(problem, LinearProgram):
        rows, rhs = [problem.a[keep]], [problem.b[keep]]
        for chunk in chunks:
            r, h = _rows_rhs_chunk(chunk, d, "LP")
            rows.append(r)
            rhs.append(h)
        new_problem: "LPTypeProblem" = LinearProgram(
            c=problem.c,
            a=np.concatenate(rows, axis=0),
            b=np.concatenate(rhs),
            box_bound=problem.box_bound,
            solver=problem.solver,
            lexicographic=problem.lexicographic,
            tolerance=problem.tolerance,
        )
    elif isinstance(problem, MinimumEnclosingBall):
        blocks = [problem.points[keep]]
        blocks.extend(_points_chunk(c, d, "MEB") for c in chunks)
        new_problem = MinimumEnclosingBall(
            points=np.concatenate(blocks, axis=0), tolerance=problem.tolerance
        )
    elif isinstance(problem, LinearSVM):
        points, labels = [problem.points[keep]], [problem.labels[keep]]
        for chunk in chunks:
            p, y = _labelled_chunk(chunk, d)
            points.append(p)
            labels.append(y)
        new_problem = LinearSVM(
            points=np.concatenate(points, axis=0),
            labels=np.concatenate(labels),
            tolerance=problem.tolerance,
        )
    elif isinstance(problem, ConvexQuadraticProgram):
        rows, rhs = [problem.g_matrix[keep]], [problem.h_vector[keep]]
        for chunk in chunks:
            r, h = _rows_rhs_chunk(chunk, d, "QP")
            rows.append(r)
            rhs.append(h)
        new_problem = ConvexQuadraticProgram(
            q_matrix=problem.q_matrix,
            q_vector=problem.q_vector,
            g_matrix=np.concatenate(rows, axis=0),
            h_vector=np.concatenate(rhs),
            tolerance=problem.tolerance,
        )
    else:
        raise SessionError(
            f"cannot edit constraints of {type(problem).__name__}: implement "
            "with_constraint_changes(keep_indices, added_chunks) to opt into "
            "incremental solving"
        )
    if new_problem.num_constraints == 0:
        raise SessionError("the edited instance has no constraints")
    return new_problem, keep


def _build_from_chunks(family: str, chunks: list, static: dict) -> "LPTypeProblem":
    """Assemble a fresh instance of one built-in family from fed chunks."""
    from ..problems import (
        ConvexQuadraticProgram,
        LinearProgram,
        LinearSVM,
        MinimumEnclosingBall,
    )

    canonical = FAMILY_ALIASES.get(family)
    if canonical is None:
        raise SessionError(
            f"unknown ingestion family {family!r}; supported: "
            f"{', '.join(sorted(set(FAMILY_ALIASES.values())))}"
        )
    if not chunks:
        raise SessionError("ingestion handle finalised without any chunks")
    if canonical == "linear_program":
        if "c" not in static:
            raise SessionError(
                "ingesting a linear program needs the objective: "
                "session.ingest(family='lp', c=...)"
            )
        c = np.asarray(static.pop("c"), dtype=float).reshape(-1)
        rows, rhs = zip(*(_rows_rhs_chunk(ch, c.size, "LP") for ch in chunks))
        return LinearProgram(
            c=c, a=np.concatenate(rows, axis=0), b=np.concatenate(rhs), **static
        )
    if canonical == "minimum_enclosing_ball":
        first = np.atleast_2d(np.asarray(chunks[0], dtype=float))
        d = first.shape[1]
        points = np.concatenate(
            [_points_chunk(ch, d, "MEB") for ch in chunks], axis=0
        )
        return MinimumEnclosingBall(points=points, **static)
    if canonical == "linear_svm":
        first = _labelled_chunk(chunks[0], np.atleast_2d(chunks[0][0]).shape[1])
        d = first[0].shape[1]
        pairs = [_labelled_chunk(ch, d) for ch in chunks]
        return LinearSVM(
            points=np.concatenate([p for p, _ in pairs], axis=0),
            labels=np.concatenate([y for _, y in pairs]),
            **static,
        )
    # quadratic_program
    for key in ("q_matrix", "q_vector"):
        if key not in static:
            raise SessionError(
                "ingesting a quadratic program needs the objective: "
                "session.ingest(family='qp', q_matrix=..., q_vector=...)"
            )
    q_vector = np.asarray(static["q_vector"], dtype=float).reshape(-1)
    rows, rhs = zip(
        *(_rows_rhs_chunk(ch, q_vector.size, "QP") for ch in chunks)
    )
    return ConvexQuadraticProgram(
        g_matrix=np.concatenate(rows, axis=0),
        h_vector=np.concatenate(rhs),
        **static,
    )


# ---------------------------------------------------------------------- #
# Warm state and the session itself
# ---------------------------------------------------------------------- #


@dataclass
class WarmState:
    """The carried state of one session between solves.

    ``witnesses`` are the successful-iteration basis witnesses accumulated
    over the session's solves — the model-independent Clarkson weight state
    (weight of constraint ``i`` = ``boost ** #witnesses i violates``).
    Witnesses are geometric points, so they survive constraint edits
    unchanged.  The list grows by ``O(nu * r)`` per engine re-solve;
    :meth:`Session.reset` clears it.
    """

    witnesses: list = field(default_factory=list, repr=False)
    basis_indices: tuple[int, ...] = ()
    witness: Any = None
    value: Any = None
    solves: int = 0


class IngestHandle:
    """Streaming ingestion: constraint chunks arrive over time.

    Obtained from :meth:`Session.ingest`.  ``feed(chunk)`` buffers one
    constraint block (family-native form, see :func:`extend_problem`);
    ``finalize()`` assembles the instance and — by default — solves it
    through the session, warm-starting from the session's prior state when
    the chunks extend the session's current problem.
    """

    def __init__(
        self,
        session: "Session",
        base: Optional["LPTypeProblem"],
        family: Optional[str],
        static: dict,
    ) -> None:
        self._session = session
        self._base = base
        self._family = family
        self._static = dict(static)
        self._chunks: list = []
        self._finalized = False

    @property
    def num_chunks(self) -> int:
        return len(self._chunks)

    def feed(self, *chunk: Any) -> "IngestHandle":
        """Buffer one constraint block; returns ``self`` for chaining.

        Pass the block either as one argument (``feed(points)``,
        ``feed((rows, rhs))``) or as the unpacked pair
        (``feed(rows, rhs)`` / ``feed(points, labels)``).
        """
        if self._finalized:
            raise SessionError("ingestion handle is already finalised")
        if not chunk:
            raise SessionError("feed() needs a constraint block")
        self._chunks.append(chunk[0] if len(chunk) == 1 else tuple(chunk))
        return self

    def finalize(
        self,
        solve: bool = True,
        budget: Optional[ResourceBudget] = None,
        **overrides: Any,
    ) -> Any:
        """Assemble the fed chunks and (by default) solve the instance.

        Extending the session's current problem goes through
        :meth:`Session.resolve_with` (warm re-solve); a fresh build goes
        through :meth:`Session.solve`.  With ``solve=False`` the assembled
        problem is returned unsolved (and the session is left untouched).
        """
        if self._finalized:
            raise SessionError("ingestion handle is already finalised")
        self._finalized = True
        if self._base is not None:
            if not solve:
                problem, _ = extend_problem(self._base, added=self._chunks)
                return problem
            return self._session.resolve_with(
                added=self._chunks, budget=budget, **overrides
            )
        if self._family is None:
            raise SessionError(
                "nothing to extend: the session has no current problem; pass "
                "family= (and its static fields) to session.ingest()"
            )
        problem = _build_from_chunks(self._family, self._chunks, self._static)
        if not solve:
            return problem
        return self._session.solve(problem, budget=budget, **overrides)


class Session:
    """A stateful solver session; see the module docstring.

    Parameters
    ----------
    model:
        Registered model name, as in :func:`repro.solve`.
    config:
        Optional typed configuration, as in :func:`repro.solve`.
    warm_tracking:
        Whether solves record warm state for later :meth:`resolve_with`
        calls.  The one-shot facade shims disable it so they stay
        bit-identical to their historical behaviour (``SolveResult.warm``
        stays ``None``).
    warn_dropped:
        Forwarded to :func:`repro.api.facade.build_config`
        (``compare_models`` passes ``False``: cross-class seeding is its
        contract).
    **overrides:
        Config field overrides, as in :func:`repro.solve`.
    """

    def __init__(
        self,
        model: str = "streaming",
        config: Optional[SolverConfig] = None,
        *,
        warm_tracking: bool = True,
        warn_dropped: bool = True,
        **overrides: Any,
    ) -> None:
        self.spec: ModelSpec = get_model(model)
        self.config: SolverConfig = build_config(
            self.spec, config, overrides, warn_dropped=warn_dropped
        )
        self._warm_tracking = bool(warm_tracking)
        self._closed = False
        self.problem: Optional["LPTypeProblem"] = None
        self.warm: Optional[WarmState] = None
        self._solves = 0

        transport_cfg = getattr(self.config, "transport", None)
        # Session-level validation: an *explicit* session rejects a transport
        # kind the model's driver cannot execute on.  Ephemeral shims
        # (warm_tracking=False: solve/compare_models/solve_many/service)
        # keep the historical leniency — runners that ignore the transport
        # field (the baselines) must keep accepting such configs.
        if (
            self._warm_tracking
            and transport_cfg is not None
            and transport_cfg.kind not in self.spec.transports
        ):
            raise InvalidConfigError(
                f"model {self.spec.name!r} does not run on transport kind "
                f"{transport_cfg.kind!r} (supported: "
                f"{', '.join(self.spec.transports)}); see describe_model()"
            )
        # The long-lived transport: resolved once, reused by every solve of
        # this session.  Worker pools are warmed up eagerly so the spin-up
        # cost sits in session creation, not in the first solve.  Models
        # whose drivers cannot execute on the requested kind (baselines that
        # ignore the transport field) get no pin — spinning up workers no
        # driver will ever talk to would be pure waste.
        self._transport: Optional[Transport] = None
        self._owns_transport = False
        # Shared-memory exports made by this session's solves are co-owned by
        # this token, so the problem's segment outlives the per-solve fabric
        # sessions and is unlinked deterministically at close().  Only
        # long-lived sessions on a process transport need one.
        self._shm_token: Optional[str] = None
        if (
            transport_cfg is not None
            and transport_cfg.kind == "process"
            and "process" in self.spec.transports
        ):
            supervised = bool(getattr(transport_cfg, "supervised", False))
            shared_memory = bool(getattr(transport_cfg, "shared_memory", True))
            if transport_cfg.reuse_pool:
                self._transport = shared_process_transport(
                    transport_cfg.max_workers,
                    transport_cfg.start_method,
                    supervised=supervised,
                    shared_memory=shared_memory,
                )
            else:
                if supervised:
                    from ..resilience.retry import RetryPolicy
                    from ..resilience.supervisor import SupervisedProcessPoolTransport

                    pool: ProcessPoolTransport = SupervisedProcessPoolTransport(
                        max_workers=transport_cfg.max_workers,
                        start_method=transport_cfg.start_method,
                        shared_memory=shared_memory,
                        restart_policy=RetryPolicy(
                            max_attempts=transport_cfg.max_restarts,
                            backoff_s=transport_cfg.restart_backoff_s,
                        ),
                    )
                else:
                    pool = ProcessPoolTransport(
                        max_workers=transport_cfg.max_workers,
                        start_method=transport_cfg.start_method,
                        shared_memory=shared_memory,
                    )
                self._transport = pool
                self._owns_transport = True
            if self._warm_tracking:
                self._shm_token = shm.new_pin_token()
            if self._warm_tracking:
                # Explicit sessions pay spin-up now; ephemeral shims leave
                # shared pools lazy (the first solve starts them, exactly as
                # the one-shot facade always has).
                self._transport.warm_up()
            elif self._owns_transport:
                self._transport.warm_up()
        elif (
            transport_cfg is not None
            and transport_cfg.kind == "tcp"
            and "tcp" in self.spec.transports
        ):
            # Same pinning rules as the process pool, but cluster-backed: no
            # shm pin token (the TCP wire ships plain pickles), and explicit
            # agent addresses always make the cluster session-private.
            from ..cluster.transport import resolve_tcp_transport

            self._transport = resolve_tcp_transport(transport_cfg)
            self._owns_transport = bool(getattr(self._transport, "private", False))
            if self._owns_transport:
                # The session owns teardown now; clear the per-run flag so
                # the topology does not close the cluster after one solve.
                self._transport.private = False
            if self._warm_tracking or self._owns_transport:
                self._transport.warm_up()

    # ------------------------------------------------------------------ #
    # Lifecycle
    # ------------------------------------------------------------------ #

    def __enter__(self) -> "Session":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.close()

    def close(self) -> None:
        """End the session: tear down a session-owned worker pool."""
        if self._closed:
            return
        self._closed = True
        if self._owns_transport and self._transport is not None:
            self._transport.close()
        self._transport = None
        if self._shm_token is not None:
            # Drop this session's pin: shared segments whose owner set
            # drains here are unlinked now, deterministically.
            shm.store().release_owner(self._shm_token)
            self._shm_token = None

    def reset(self) -> None:
        """Drop the warm state (the next solve is cold again)."""
        self.problem = None
        self.warm = None

    def _check_open(self) -> None:
        if self._closed:
            raise SessionError("session is closed")

    def describe(self) -> dict:
        """Introspection snapshot: model, capabilities, carried state."""
        return {
            "model": self.spec.name,
            "config_class": type(self.config).__name__,
            "session": self.spec.session_spec.as_dict(),
            "transport": self._transport.name if self._transport else "inprocess",
            "solves": self._solves,
            "warm_bases": len(self.warm.witnesses) if self.warm else 0,
            "problem_constraints": (
                self.problem.num_constraints if self.problem is not None else None
            ),
        }

    # ------------------------------------------------------------------ #
    # Solving
    # ------------------------------------------------------------------ #

    def _config_for(self, overrides: dict) -> SolverConfig:
        if not overrides:
            return self.config
        return build_config(self.spec, self.config, overrides)

    def _execute(
        self,
        problem: "LPTypeProblem",
        config: SolverConfig,
        warm_witnesses: Optional[list],
        budget: Optional[ResourceBudget],
    ) -> SolveResult:
        """One driver run under the session's transport pin and budget meter.

        A :func:`~repro.resilience.faults.recovery_scope` wraps the run so
        the supervised transport can report what it did; worker restarts are
        folded into the result's ``transport_retries`` usage counter, and a
        degradation to in-process execution is flagged in the metadata.
        """
        with pinned_transport(self._transport), shm.pinned_shm_owner(
            self._shm_token
        ), metered(budget), recovery_scope() as notes:
            if warm_witnesses is not None and self.spec.warm_runner is not None:
                result = self.spec.warm_runner(problem, config, warm_witnesses)
            else:
                result = self.spec.runner(problem, config)
        if notes.restarts:
            result.resources.transport_retries += notes.restarts
        if notes.degraded:
            result.metadata["transport_degraded"] = True
        return result

    def transport_health(self) -> dict:
        """The pinned transport's liveness/degradation summary."""
        if self._transport is None:
            return {"kind": "inprocess", "supervised": False, "degraded": False}
        return self._transport.health()

    def run_cold(
        self,
        problem: "LPTypeProblem",
        config: Optional[SolverConfig] = None,
        budget: Optional[ResourceBudget] = None,
        warm_witnesses: Optional[list] = None,
    ) -> SolveResult:
        """A stateless solve on the session's transport (service/batch path).

        Does not touch the session's problem or warm state, so concurrent
        ``run_cold`` calls (the :class:`~repro.api.service.SolverService`
        worker threads, ``solve_many``) are safe.  ``warm_witnesses`` (for
        models with a warm runner) resumes from checkpointed basis
        witnesses: by the warm==cold determinism contract the resumed solve
        certifies the same basis, value, and witness as an uninterrupted
        run — this is the service's checkpoint-recovery path.
        """
        self._check_open()
        if warm_witnesses is not None and self.spec.warm_runner is None:
            warm_witnesses = None
        return self._execute(problem, config or self.config, warm_witnesses, budget)

    def solve(
        self,
        problem: "LPTypeProblem",
        budget: Optional[ResourceBudget] = None,
        **overrides: Any,
    ) -> SolveResult:
        """Solve ``problem`` and (re)base the session's warm state on it.

        Numerically identical to ``repro.solve(problem, ...)`` with the same
        configuration — the warm state is *recorded*, never consumed, by
        this method.  Use :meth:`resolve_with` to consume it.
        """
        self._check_open()
        config = self._config_for(overrides)
        tracking = self._warm_tracking and self.spec.warm_runner is not None
        result = self._execute(problem, config, [] if tracking else None, budget)
        self._adopt(problem, result)
        return result

    def resolve_with(
        self,
        added: Any = None,
        removed: Optional[Sequence[int]] = None,
        budget: Optional[ResourceBudget] = None,
        **overrides: Any,
    ) -> SolveResult:
        """Warm re-solve of the current problem with constraints edited.

        ``added`` is one constraint block or a list of blocks
        (family-native form, see :func:`extend_problem`); ``removed`` lists
        constraint indices of the *current* problem to drop.  With neither,
        the current instance itself is re-solved warm.  The certified basis
        agrees with a cold solve of the edited instance (the warm-start
        determinism contract); ``result.warm`` records the reuse.
        """
        self._check_open()
        if self.problem is None:
            raise SessionError(
                "resolve_with() needs a prior solve: call session.solve(problem) "
                "first"
            )
        if not self.spec.session_spec.warm_restart:
            raise SessionError(
                f"model {self.spec.name!r} does not support warm restarts "
                "(describe_model(name)['session']['warm_restart'] is False)"
            )
        union, keep = extend_problem(self.problem, added=added, removed=removed)
        warm = self.warm if self.warm is not None else WarmState()

        result = None
        # The fast path returns the *prior* certificate without running the
        # solver, so it only applies when this call changes nothing about
        # how a solve would run: no per-call config overrides, no budget.
        if (
            not overrides
            and budget is None
            and keep.size == self.problem.num_constraints
        ):
            result = self._fast_path(union, warm)
        if result is None:
            config = self._config_for(overrides)
            result = self._execute(union, config, list(warm.witnesses), budget)
        self._adopt(union, result)
        return result

    def _fast_path(
        self, union: "LPTypeProblem", warm: WarmState
    ) -> Optional[SolveResult]:
        """Re-certify the prior optimum with one violation sweep, if possible.

        Only applicable to pure *additions* (no constraint removed): then
        monotonicity gives ``f(union) >= f(old)``, while feasibility of the
        prior witness for every union constraint (the sweep) gives
        ``f(union) <= f(old)`` — so the prior value, witness, and basis
        certify the edited instance as-is.  Removals may genuinely lower the
        optimum, so they always run the (warm) engine.  The sweep is the
        dominant cost: one pass / broadcast round in model terms.
        """
        if warm.witness is None or not warm.basis_indices:
            return None
        if union.violation_mask(warm.witness, union.all_indices()).any():
            return None
        resources = ResourceUsage(oracle_calls=1)
        if "passes" in self.spec.currencies:
            resources.passes = 1
        if "rounds" in self.spec.currencies:
            resources.rounds = 1
        return SolveResult(
            value=warm.value,
            witness=warm.witness,
            basis_indices=tuple(warm.basis_indices),
            iterations=0,
            successful_iterations=0,
            resources=resources,
            metadata={
                "algorithm": "session_warm_fast_path",
                "model": self.spec.name,
            },
            warm=WarmStats(
                warm_start=True,
                fast_path=True,
                reused_bases=len(warm.witnesses),
                new_bases=0,
                witnesses=list(warm.witnesses),
            ),
        )

    def _adopt(self, problem: "LPTypeProblem", result: SolveResult) -> None:
        """Rebase the session's warm state on one finished solve."""
        self._solves += 1
        if not self._warm_tracking:
            return
        self.problem = problem
        if result.warm is not None:
            self.warm = WarmState(
                witnesses=list(result.warm.witnesses),
                basis_indices=tuple(result.basis_indices),
                witness=result.witness,
                value=result.value,
                solves=self._solves,
            )
        else:
            self.warm = None

    # ------------------------------------------------------------------ #
    # Ingestion and batches
    # ------------------------------------------------------------------ #

    def ingest(
        self, family: Optional[str] = None, fresh: bool = False, **static: Any
    ) -> IngestHandle:
        """Open a streaming ingestion handle.

        Without arguments the fed chunks *extend the session's current
        problem* (finalise = warm re-solve).  With ``family=`` (or
        ``fresh=True`` and a family) the chunks build a new instance of that
        family from scratch; ``static`` carries the family's non-constraint
        fields (``c=`` for LP, ``q_matrix=``/``q_vector=`` for QP).
        """
        self._check_open()
        base = None if (fresh or family is not None) else self.problem
        if base is not None and not self.spec.session_spec.warm_restart:
            # Extension finalises through resolve_with, which this model
            # cannot run; without a family to build fresh, the raise below
            # tells the caller to pass one.
            base = None
        if base is None and family is None and self.problem is None:
            raise SessionError(
                "session.ingest() without family= needs a current problem to "
                "extend; pass family='lp'|'meb'|'svm'|'qp' (plus static "
                "fields) to build one from the fed chunks"
            )
        if base is None and family is None:
            if fresh:
                raise SessionError(
                    "fresh ingestion needs a family: pass "
                    "family='lp'|'meb'|'svm'|'qp' (plus static fields)"
                )
            raise SessionError(
                f"model {self.spec.name!r} cannot warm-extend its current "
                "problem; pass family= to ingest a fresh instance"
            )
        return IngestHandle(self, base, family, static)

    def solve_many(
        self,
        problems: Any,
        max_workers: Optional[int] = None,
        root_seed: Optional[int] = None,
        **overrides: Any,
    ) -> "BatchResult":
        """Batch-solve independent instances on this session's transport.

        Same semantics as :func:`repro.solve_many` (per-instance seeds
        derived from one root), but every instance reuses the session's
        worker pool.  The session's warm state is not touched.
        """
        self._check_open()
        from .batch import solve_many as _solve_many

        return _solve_many(
            problems,
            model=self.spec.name,
            max_workers=max_workers,
            root_seed=root_seed,
            session=self,
            **overrides,
        )


class SessionPool:
    """A keyed pool of long-lived sessions, created on first use.

    The HTTP front end keeps one pool keyed by *model name*: the first
    request for a model spins up that model's session (and its pinned
    transport / worker pool) and every later request — from any tenant —
    reuses it, which is where the amortisation comes from.  Any hashable
    key works; pass ``factory`` to control how a key becomes a session
    (the default treats the key as a registered model name).

    Pools are thread-safe: concurrent ``get`` calls for the same key create
    exactly one session.  ``close()`` closes every pooled session; a closed
    pool rejects further ``get`` calls.

    Parameters
    ----------
    config, warm_tracking, **overrides:
        Forwarded to every default-constructed :class:`Session`.
        ``warm_tracking`` defaults to ``False`` because pooled sessions are
        shared across concurrent stateless solves (the service path).
    factory:
        Optional ``key -> Session`` constructor overriding the default.
    """

    def __init__(
        self,
        config: Optional[SolverConfig] = None,
        *,
        warm_tracking: bool = False,
        factory: Optional[Any] = None,
        **overrides: Any,
    ) -> None:
        self._config = config
        self._warm_tracking = bool(warm_tracking)
        self._overrides = dict(overrides)
        self._factory = factory
        self._sessions: dict[Any, Session] = {}
        self._lock = threading.Lock()
        self._closed = False
        self._replacements: dict[Any, int] = {}

    def _build(self, key: Any) -> Session:
        if self._factory is not None:
            return self._factory(key)
        return Session(
            model=str(key),
            config=self._config,
            warm_tracking=self._warm_tracking,
            **self._overrides,
        )

    def get(self, key: Any) -> Session:
        """The session for ``key``, creating it on first use."""
        with self._lock:
            if self._closed:
                raise SessionError("session pool is closed")
            existing = self._sessions.get(key)
            if existing is not None:
                return existing
            # Built under the lock: concurrent first requests for one key
            # must not race two transports into existence.
            created = self._build(key)
            self._sessions[key] = created
            return created

    def keys(self) -> list:
        with self._lock:
            return list(self._sessions)

    def __len__(self) -> int:
        with self._lock:
            return len(self._sessions)

    def __contains__(self, key: Any) -> bool:
        with self._lock:
            return key in self._sessions

    def discard(self, key: Any) -> None:
        """Close and drop one pooled session (no-op for unknown keys)."""
        with self._lock:
            session_obj = self._sessions.pop(key, None)
        if session_obj is not None:
            session_obj.close()

    def replace(self, key: Any) -> Session:
        """Swap a poisoned session for a fresh one (auto-replacement path).

        The server calls this when a ticket fails with a terminal
        (``retryable=False``) transport failure: the old session — and its
        broken worker pool — is closed and a replacement is built on the
        spot, so the next ticket for this key runs on healthy workers.
        """
        with self._lock:
            if self._closed:
                raise SessionError("session pool is closed")
            session_obj = self._sessions.pop(key, None)
            self._replacements[key] = self._replacements.get(key, 0) + 1
        if session_obj is not None:
            session_obj.close()
        return self.get(key)

    def replacements(self) -> dict:
        """How many times each key's session was replaced."""
        with self._lock:
            return dict(self._replacements)

    def close(self) -> None:
        """Close every pooled session and reject further use."""
        with self._lock:
            if self._closed:
                return
            self._closed = True
            sessions = list(self._sessions.values())
            self._sessions.clear()
        for session_obj in sessions:
            session_obj.close()

    def __enter__(self) -> "SessionPool":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.close()


def session(
    model: str = "streaming",
    config: Optional[SolverConfig] = None,
    **overrides: Any,
) -> Session:
    """Open a stateful solver session: ``with repro.session(...) as s: ...``.

    The returned :class:`Session` owns a long-lived transport, carries warm
    state between solves (``s.solve`` ... ``s.resolve_with(added=...)``),
    and accepts streaming ingestion via ``s.ingest()``.  See
    ``docs/sessions.md``.
    """
    return Session(model=model, config=config, **overrides)
