"""Async solver service: a queued front end over one long-lived session.

:class:`SolverService` is the heavy-traffic face of the library: requests
are submitted (not awaited), run on a bounded pool of worker threads that
share one :class:`~repro.api.session.Session` (and therefore one transport /
worker pool), and come back as :class:`Ticket` futures.  Each request can
carry

* a **deadline** (``deadline_s``, anchored at submission: queue wait counts),
* a **resource budget** (:class:`~repro.core.budget.ResourceBudget`:
  wall time, meta-algorithm iterations, communication bits).

A request that exhausts either aborts with
:class:`~repro.core.exceptions.BudgetExceededError` carrying the partial
:class:`~repro.core.result.ResourceUsage`; the ticket's ``error`` records
it.  Responses serialise with ``SolveResult.to_dict()`` for wire transport.

Usage::

    with SolverService(model="streaming", max_workers=4) as svc:
        tickets = [svc.submit(p, deadline_s=10.0) for p in problems]
        results = [t.result() for t in tickets]
"""

from __future__ import annotations

import itertools
import threading
import time
from concurrent.futures import Future, ThreadPoolExecutor
from typing import TYPE_CHECKING, Any, Iterable, Optional

from ..core.budget import (
    CheckpointStore,
    ProgressTap,
    ResourceBudget,
    checkpointing,
    metered,
    tapping,
)
from ..core.exceptions import (
    BudgetExceededError,
    CommunicationError,
    SessionError,
    TransportFailure,
)
from ..core.result import SolveResult
from ..resilience.circuit import CircuitBreaker
from ..resilience.retry import RetryPolicy
from .config import SolverConfig
from .session import Session

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..core.lptype import LPTypeProblem

__all__ = ["SolverService", "Ticket"]

#: Ticket lifecycle states (monotonic left to right).
TICKET_STATES = ("queued", "running", "done", "failed", "cancelled")


class Ticket:
    """A submitted request: a future plus submission bookkeeping.

    ``result(timeout)`` blocks for the :class:`SolveResult` (re-raising the
    request's error, if any); ``status`` is one of :data:`TICKET_STATES`.
    """

    def __init__(
        self,
        ticket_id: int,
        deadline_s: Optional[float],
        budget: Optional[ResourceBudget],
        tenant: Optional[str] = None,
    ) -> None:
        self.id = int(ticket_id)
        self.deadline_s = deadline_s
        self.budget = budget
        self.tenant = tenant
        self.submitted_at = time.monotonic()
        self.started_at: Optional[float] = None
        self.finished_at: Optional[float] = None
        self._future: Future = Future()

    # The service drives these transitions; users only read.

    @property
    def status(self) -> str:
        if self._future.cancelled():
            return "cancelled"
        if self._future.done():
            return "failed" if self._future.exception() is not None else "done"
        if self.started_at is not None:
            return "running"
        return "queued"

    @property
    def error(self) -> Optional[BaseException]:
        """The request's exception, if it has failed (non-blocking)."""
        if not self._future.done() or self._future.cancelled():
            return None
        return self._future.exception()

    def done(self) -> bool:
        return self._future.done()

    def cancel(self) -> bool:
        """Cancel a still-queued request (running requests are not stopped)."""
        return self._future.cancel()

    def result(self, timeout: Optional[float] = None) -> SolveResult:
        """Block for the result; re-raises the request's error on failure."""
        return self._future.result(timeout=timeout)

    def wait_s(self) -> Optional[float]:
        """Seconds the request sat in the queue (``None`` while queued)."""
        if self.started_at is None:
            return None
        return self.started_at - self.submitted_at


class SolverService:
    """Bounded-concurrency queued solving over one shared session.

    Parameters
    ----------
    model, config, **overrides:
        As in :func:`repro.solve`; resolved once into the shared session
        (whose long-lived transport every request reuses).
    max_workers:
        Worker-thread count — the concurrency bound.  Excess submissions
        queue (FIFO per the executor).
    session:
        Optional externally-owned :class:`Session` to serve from instead of
        creating one (it is *not* closed on shutdown).
    retry_policy:
        Bounds the per-ticket retry of *retryable*
        :class:`~repro.core.exceptions.TransportFailure`: a ticket whose
        transport crashed is re-run (resuming from the engine's latest
        checkpoint when the model has a warm runner) up to
        ``retry_policy.max_attempts`` total attempts.
    circuit_breaker:
        The per-service :class:`~repro.resilience.circuit.CircuitBreaker`;
        repeated infrastructure failures open it and :meth:`submit` sheds
        load with :class:`~repro.core.exceptions.CircuitOpenError`.
    """

    def __init__(
        self,
        model: str = "streaming",
        config: Optional[SolverConfig] = None,
        max_workers: int = 2,
        session: Optional[Session] = None,
        retry_policy: Optional[RetryPolicy] = None,
        circuit_breaker: Optional[CircuitBreaker] = None,
        **overrides: Any,
    ) -> None:
        if max_workers < 1:
            raise SessionError(f"max_workers must be >= 1 (got {max_workers!r})")
        self._owns_session = session is None
        self._session = session or Session(
            model=model, config=config, warm_tracking=False, **overrides
        )
        self._executor = ThreadPoolExecutor(
            max_workers=int(max_workers), thread_name_prefix="repro-service"
        )
        self.max_workers = int(max_workers)
        self.retry_policy = retry_policy or RetryPolicy(
            max_attempts=2, backoff_s=0.05, max_backoff_s=0.5
        )
        self.breaker = circuit_breaker or CircuitBreaker(
            failure_threshold=5,
            window_s=60.0,
            cooldown_s=1.0,
            model=self._session.spec.name,
        )
        self._ids = itertools.count(1)
        self._lock = threading.Lock()
        self._shutdown = False
        self._counters = {state: 0 for state in ("submitted", "done", "failed", "cancelled")}
        self._running = 0
        self._tenant_counters: dict[str, dict[str, int]] = {}
        self._transport_retries = 0
        self._checkpoint_resumes = 0

    # ------------------------------------------------------------------ #
    # Lifecycle
    # ------------------------------------------------------------------ #

    def __enter__(self) -> "SolverService":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.shutdown()

    def shutdown(self, wait: bool = True) -> None:
        """Stop accepting requests; optionally wait for in-flight ones.

        The service-owned session (and its worker pool) is only closed once
        every accepted ticket has drained — with ``wait=False`` that happens
        on a background thread, so queued work still completes instead of
        crashing into a closed session.
        """
        with self._lock:
            if self._shutdown:
                return
            self._shutdown = True
        self._executor.shutdown(wait=wait)
        if not self._owns_session:
            return
        if wait:
            self._session.close()
        else:
            threading.Thread(target=self._drain_and_close, daemon=True).start()

    def _drain_and_close(self) -> None:
        # A second executor.shutdown(wait=True) joins the worker threads.
        self._executor.shutdown(wait=True)
        self._session.close()

    @property
    def session(self) -> Session:
        return self._session

    def _bump(self, tenant: Optional[str], outcome: str) -> None:
        """Count one ticket outcome, attributed to its tenant (lock held)."""
        self._counters[outcome] += 1
        if tenant is not None:
            bucket = self._tenant_counters.setdefault(
                tenant,
                {state: 0 for state in ("submitted", "done", "failed", "cancelled")},
            )
            bucket[outcome] += 1

    def stats(self) -> dict:
        """Counters snapshot: outcomes, queue depth, per-tenant breakdown.

        ``submitted`` / ``done`` / ``failed`` / ``cancelled`` are lifetime
        ticket counts; ``running`` is the tickets executing right now,
        ``queue_depth`` the tickets accepted but not yet started, and
        ``tenants`` the same per-outcome counts broken down by the tenant
        passed at :meth:`submit` (tickets submitted without a tenant appear
        only in the totals).  This is the service's public introspection
        surface — the HTTP front end's ``/v1/usage`` and the test suite
        read it instead of reaching into privates.
        """
        with self._lock:
            finished = (
                self._counters["done"]
                + self._counters["failed"]
                + self._counters["cancelled"]
            )
            queued = self._counters["submitted"] - finished - self._running
            return {
                **dict(self._counters),
                "running": self._running,
                "queue_depth": max(0, queued),
                "max_workers": self.max_workers,
                "transport_retries": self._transport_retries,
                "checkpoint_resumes": self._checkpoint_resumes,
                "circuit": self.breaker.describe(),
                "tenants": {
                    tenant: dict(bucket)
                    for tenant, bucket in self._tenant_counters.items()
                },
            }

    # ------------------------------------------------------------------ #
    # Submission
    # ------------------------------------------------------------------ #

    def submit(
        self,
        problem: "LPTypeProblem",
        deadline_s: Optional[float] = None,
        budget: Optional[ResourceBudget] = None,
        tenant: Optional[str] = None,
        on_progress: Optional[Any] = None,
        **overrides: Any,
    ) -> Ticket:
        """Enqueue one solve; returns immediately with a :class:`Ticket`.

        ``deadline_s`` bounds the request end to end from submission (queue
        wait included); ``budget`` bounds the execution itself.  ``tenant``
        attributes the ticket in :meth:`stats`; ``on_progress`` (a callable
        taking one event dict) receives the engine's per-iteration and the
        fabric's per-round events while the request runs — it is invoked in
        the worker thread, so it must be cheap and thread-safe.  Config
        ``overrides`` apply to this request only.
        """
        if deadline_s is not None and deadline_s <= 0:
            raise SessionError(f"deadline_s must be > 0 (got {deadline_s!r})")
        # Shed load *before* building config or touching the queue: an open
        # breaker means the session's infrastructure is broken and queueing
        # more work onto it only deepens the outage.
        self.breaker.allow()
        config = self._session._config_for(overrides)
        ticket = Ticket(next(self._ids), deadline_s, budget, tenant=tenant)
        tap = ProgressTap(on_progress) if on_progress is not None else None
        # The shutdown check, the counter, and the executor hand-off stay
        # under one lock so a concurrent shutdown() cannot slip between them
        # (which would raise the executor's RuntimeError and desync stats).
        with self._lock:
            if self._shutdown:
                raise SessionError("service is shut down")
            self._executor.submit(self._run_ticket, ticket, problem, config, tap)
            self._bump(tenant, "submitted")
        return ticket

    def submit_many(
        self, problems: Iterable["LPTypeProblem"], **kwargs: Any
    ) -> list[Ticket]:
        """Submit one ticket per problem (shared deadline/budget/overrides)."""
        return [self.submit(problem, **kwargs) for problem in problems]

    # ------------------------------------------------------------------ #
    # Worker side
    # ------------------------------------------------------------------ #

    def _effective_budget(self, ticket: Ticket) -> Optional[ResourceBudget]:
        """Fold the submission-anchored deadline into the request budget.

        The deadline is end-to-end (queue wait counts), the budget's
        ``wall_time_s`` bounds the execution only; at execution start the
        remaining deadline is ``deadline_s - wait`` and the effective
        execution wall limit is the smaller of the two.  A deadline that
        expired while queued yields a non-positive remainder, which the
        caller turns into an immediate :class:`BudgetExceededError`.
        """
        budget = ticket.budget
        if ticket.deadline_s is None:
            return budget
        wait = ticket.wait_s() or 0.0
        remaining = ticket.deadline_s - wait
        if remaining <= 0:
            raise BudgetExceededError(
                f"request deadline of {ticket.deadline_s:g}s expired after "
                f"{wait:.3f}s in the queue",
                reason="wall_time",
                elapsed_s=wait,
            )
        walls = [remaining]
        if budget is not None and budget.wall_time_s is not None:
            walls.append(budget.wall_time_s)
        return ResourceBudget(
            wall_time_s=min(walls),
            iterations=budget.iterations if budget else None,
            communication_bits=budget.communication_bits if budget else None,
        )

    def _finish(self, ticket: Ticket, outcome: str) -> None:
        ticket.finished_at = time.monotonic()
        with self._lock:
            self._running -= 1
            self._bump(ticket.tenant, outcome)

    def _run_ticket(
        self,
        ticket: Ticket,
        problem: "LPTypeProblem",
        config: SolverConfig,
        tap: Optional[ProgressTap] = None,
    ) -> None:
        if not ticket._future.set_running_or_notify_cancel():
            with self._lock:
                self._bump(ticket.tenant, "cancelled")
            return
        ticket.started_at = time.monotonic()
        with self._lock:
            self._running += 1
        try:
            budget = self._effective_budget(ticket)
            # Per-ticket resilience: a retryable transport failure re-runs
            # the solve up to retry_policy.max_attempts total attempts,
            # resuming from the engine's latest checkpoint (the accumulated
            # basis witnesses) when the model supports warm runs — the
            # warm==cold determinism contract guarantees the resumed solve
            # certifies the same basis, value, and witness.  Every attempt's
            # meter stays anchored at execution start, so the wall budget is
            # end-to-end across retries.
            store = CheckpointStore()
            attempt = 0
            resumed = False
            while True:
                warm = None
                checkpoint = store.latest()
                if (
                    attempt > 0
                    and checkpoint is not None
                    and self._session.spec.warm_runner is not None
                ):
                    warm = list(checkpoint.witnesses)
                try:
                    # Meter, tap, and checkpoint store live in *this* worker
                    # thread's context (contextvars do not cross threads).
                    with metered(budget, started_at=ticket.started_at), tapping(
                        tap
                    ), checkpointing(store):
                        result = self._session.run_cold(
                            problem, config, warm_witnesses=warm
                        )
                    if warm is not None:
                        resumed = True
                    break
                except TransportFailure as exc:
                    self.breaker.record_failure()
                    attempt += 1
                    if not exc.retryable or attempt >= self.retry_policy.max_attempts:
                        raise
                    with self._lock:
                        self._transport_retries += 1
                    time.sleep(self.retry_policy.delay(attempt - 1))
            result.resources.transport_retries += attempt
            if resumed:
                result.resources.checkpoint_resumes += 1
                with self._lock:
                    self._checkpoint_resumes += 1
            self.breaker.record_success()
        except BaseException as exc:  # noqa: BLE001 - forwarded to the ticket
            if isinstance(exc, CommunicationError) and not isinstance(
                exc, TransportFailure
            ):
                # Infrastructure failure not already counted by the retry
                # loop above (TransportFailures were recorded per attempt).
                self.breaker.record_failure()
            # Outcome first, bookkeeping second: status/error key off the
            # future, so they must never observe "finished" before it is set.
            ticket._future.set_exception(exc)
            self._finish(ticket, "failed")
            return
        ticket._future.set_result(result)
        self._finish(ticket, "done")
