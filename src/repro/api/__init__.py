"""``repro.api`` — the canonical front door of the library.

Layers (each documented in its module):

* :mod:`repro.api.registry` — the model / problem registry
  (:class:`ModelSpec`, :class:`ProblemSpec`, ``register_*``,
  ``available_*``, ``describe_*``);
* :mod:`repro.api.config` — frozen, validated solver configurations
  (:class:`SolverConfig` and the per-model subclasses);
* :mod:`repro.api.facade` — :func:`solve` and :func:`compare_models`;
* :mod:`repro.api.batch` — :func:`solve_many` and :class:`BatchResult`;
* :mod:`repro.api.session` — the stateful :class:`Session` (warm-started
  re-solves, streaming ingestion, long-lived transports);
* :mod:`repro.api.service` — the async :class:`SolverService` front end
  (tickets, deadlines, resource budgets).

Everything here is re-exported from the top-level ``repro`` package; see
``docs/api.md`` and ``docs/sessions.md`` for the guides.
"""

from .batch import BatchResult, solve_many
from .config import (
    CoordinatorConfig,
    MPCConfig,
    SolverConfig,
    StreamingConfig,
    TransportConfig,
)
from .facade import DEFAULT_COMPARISON_MODELS, compare_models, solve
from .registry import (
    ModelSpec,
    ProblemSpec,
    SessionSpec,
    available_models,
    available_problems,
    describe_model,
    describe_problem,
    get_model,
    get_problem,
    register_model,
    register_problem,
    unregister_model,
    unregister_problem,
)
from .service import SolverService, Ticket
from .session import IngestHandle, Session, SessionPool, WarmState

from . import builtin  # noqa: F401  (import side-effect: registers "sequential")

__all__ = [
    "BatchResult",
    "solve_many",
    "CoordinatorConfig",
    "MPCConfig",
    "SolverConfig",
    "StreamingConfig",
    "TransportConfig",
    "DEFAULT_COMPARISON_MODELS",
    "compare_models",
    "solve",
    "ModelSpec",
    "ProblemSpec",
    "SessionSpec",
    "available_models",
    "available_problems",
    "describe_model",
    "describe_problem",
    "get_model",
    "get_problem",
    "register_model",
    "register_problem",
    "unregister_model",
    "unregister_problem",
    "SolverService",
    "Ticket",
    "IngestHandle",
    "Session",
    "SessionPool",
    "WarmState",
]
