"""``python -m repro`` — the command-line front door.

Five subcommands, all thin wrappers over the public API:

* ``list`` — the registry, via ``describe_model`` / ``describe_problem``;
* ``solve`` — build a synthetic instance of a registered problem family and
  solve it in a registered model (``--set key=value`` forwards config
  fields); ``--json`` prints the full ``SolveResult.to_dict()`` wire form;
* ``serve`` — boot the HTTP/SSE front end (``repro.server.ReproServer``)
  and serve until SIGINT, then drain in-flight tickets
  (``SolverService.shutdown(wait=True)``) before exiting;
* ``node`` — run a cluster node agent (``repro.cluster.NodeAgent``):
  ``--connect host:port`` dials a coordinator's registry, ``--listen
  host:port`` binds and waits for the registry to dial in; ``--set
  key=value`` overrides agent fields, consistent with ``serve``;
* ``bench`` — thin wrapper over ``benchmarks/run_suite.py`` (the canonical
  perf suite), resolved relative to the repository checkout.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from typing import Any, Optional, Sequence

__all__ = ["main"]

#: Problem families the ``solve`` subcommand can synthesise (aliases of the
#: registered names; the instance generators live in ``repro.workloads``).
SOLVE_FAMILIES = ("lp", "meb", "svm", "qp")


def _coerce(text: str) -> Any:
    """Parse one ``--set`` value: JSON when possible, bare string otherwise."""
    try:
        return json.loads(text)
    except (ValueError, TypeError):
        return text


def _parse_overrides(pairs: Sequence[str]) -> dict[str, Any]:
    overrides: dict[str, Any] = {}
    for pair in pairs:
        key, sep, value = pair.partition("=")
        if not sep or not key:
            raise SystemExit(f"--set expects key=value, got {pair!r}")
        overrides[key] = _coerce(value)
    return overrides


def _build_instance(family: str, n: int, d: int, seed: int):
    """A synthetic instance of one problem family (mirrors the perf suite)."""
    import numpy as np

    from ..problems.meb import MinimumEnclosingBall
    from ..problems.qp import ConvexQuadraticProgram
    from ..workloads import (
        make_separable_classification,
        random_polytope_lp,
        svm_problem,
        uniform_ball_points,
    )

    if family == "lp":
        return random_polytope_lp(n, d, seed=seed).problem
    if family == "meb":
        return MinimumEnclosingBall(uniform_ball_points(n, d, seed=seed))
    if family == "svm":
        return svm_problem(make_separable_classification(n, d, seed=seed))
    if family == "qp":
        rng = np.random.default_rng(seed)
        q_matrix = np.diag(np.linspace(1.0, 2.0, d))
        normals = rng.normal(size=(n, d))
        normals /= np.linalg.norm(normals, axis=1, keepdims=True)
        anchor = rng.uniform(-1.0, 1.0, size=d)
        h_vector = normals @ anchor - rng.uniform(0.1, 1.0, size=n)
        return ConvexQuadraticProgram(q_matrix, rng.normal(size=d), normals, h_vector)
    raise SystemExit(f"unknown problem family {family!r}; choose from {SOLVE_FAMILIES}")


def _cmd_list(args: argparse.Namespace) -> int:
    from .registry import (
        available_models,
        available_problems,
        describe_model,
        describe_problem,
    )

    show_models = args.what in ("models", "all")
    show_problems = args.what in ("problems", "all")
    if show_models:
        print("models:")
        for name in available_models():
            info = describe_model(name)
            caps = ",".join(info["capabilities"]) or "-"
            print(
                f"  {name:24s} transports={','.join(info['transports'])} "
                f"capabilities={caps}"
            )
            print(f"      {info['description']}")
    if show_problems:
        print("problems:")
        for name in available_problems():
            info = describe_problem(name)
            print(f"  {name:24s} tags={','.join(info['tags']) or '-'}")
            print(f"      {info['description']}")
    return 0


def _cmd_solve(args: argparse.Namespace) -> int:
    from .config import SolverConfig
    from .facade import solve

    problem = _build_instance(args.problem, args.n, args.d, args.seed)
    overrides = _parse_overrides(args.set or [])
    overrides.setdefault("seed", args.seed)
    config: Optional[SolverConfig] = None
    if args.practical:
        from .registry import get_model

        config_cls = get_model(args.model).config_cls
        seed = overrides.pop("seed")
        config = config_cls.practical(problem, seed=seed, **overrides)
        overrides = {}
    result = solve(problem, model=args.model, config=config, **overrides)
    if args.json:
        json.dump(result.to_dict(), sys.stdout, indent=2)
        print()
    else:
        for key, value in result.summary().items():
            print(f"{key:24s} {value}")
    return 0


def _cmd_serve(args: argparse.Namespace) -> int:
    from ..server import ReproServer

    tenants = None
    if args.tenants:
        tenants = json.loads(Path(args.tenants).read_text(encoding="utf-8"))
    overrides = _parse_overrides(args.set or [])
    server = ReproServer(
        host=args.host,
        port=args.port,
        model=args.model,
        max_workers=args.workers,
        tenants=tenants,
        allow_anonymous=(None if args.anonymous is None else bool(args.anonymous)),
        usage_log=args.usage_log,
        verbose=args.verbose,
        **overrides,
    )
    # Orchestrators stop containers with SIGTERM, not SIGINT: route it
    # through the same clean-drain path as Ctrl-C.  Installed before the
    # "listening on" announcement so a supervisor that signals as soon as
    # the server reports ready cannot race the handler.  Installing a
    # handler only works on the main thread — anywhere else, keep the
    # default.
    import signal

    def _sigterm(_signum: int, _frame: Any) -> None:
        raise KeyboardInterrupt

    try:
        signal.signal(signal.SIGTERM, _sigterm)
    except ValueError:
        pass
    try:
        print(
            f"repro server listening on {server.url} (model={args.model})",
            flush=True,
        )
        server.serve_forever()
    except KeyboardInterrupt:
        print("shutting down (draining in-flight tickets) ...", flush=True)
    finally:
        # Drains every accepted ticket through SolverService.shutdown(wait=True)
        # before the session pool (and its worker processes) is closed.
        server.close()
    return 0


def _cmd_node(args: argparse.Namespace) -> int:
    from ..cluster.agent import NodeAgent
    from ..cluster.protocol import parse_address

    overrides = _parse_overrides(args.set or [])
    if args.name is not None:
        overrides["name"] = args.name
    known = ("name", "heartbeat_interval_s")
    unknown = sorted(set(overrides) - set(known))
    if unknown:
        raise SystemExit(
            f"unknown node agent field(s) {', '.join(map(repr, unknown))}; "
            f"supported: {', '.join(known)}"
        )
    agent = NodeAgent(**overrides)
    try:
        if args.connect is not None:
            return int(agent.run_connect(parse_address(args.connect)) or 0)
        return int(agent.run_listen(parse_address(args.listen)) or 0)
    except ValueError as exc:
        raise SystemExit(str(exc))
    except KeyboardInterrupt:
        return 0


def _find_run_suite() -> Path:
    """Locate ``benchmarks/run_suite.py`` (source checkout layout)."""
    candidates = [
        Path.cwd() / "benchmarks" / "run_suite.py",
        # src/repro/api/cli.py -> repo root is four levels up.
        Path(__file__).resolve().parents[3] / "benchmarks" / "run_suite.py",
    ]
    for candidate in candidates:
        if candidate.is_file():
            return candidate
    raise SystemExit(
        "benchmarks/run_suite.py not found; `python -m repro bench` needs a "
        "source checkout (run it from the repository root)"
    )


def _run_bench(bench_args: Sequence[str]) -> int:
    import runpy

    suite = _find_run_suite()
    argv = [str(suite)] + list(bench_args)
    old_argv = sys.argv
    sys.argv = argv
    try:
        try:
            runpy.run_path(str(suite), run_name="__main__")
        except SystemExit as exc:
            return int(exc.code or 0)
    finally:
        sys.argv = old_argv
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro", description=__doc__.splitlines()[0]
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p_list = sub.add_parser("list", help="list registered models and problems")
    p_list.add_argument(
        "what",
        nargs="?",
        choices=("models", "problems", "all"),
        default="all",
        help="what to list (default: all)",
    )
    p_list.set_defaults(func=_cmd_list)

    p_solve = sub.add_parser(
        "solve", help="solve a synthetic instance of a registered problem family"
    )
    p_solve.add_argument("--problem", choices=SOLVE_FAMILIES, default="lp")
    p_solve.add_argument("--model", default="streaming")
    p_solve.add_argument("--n", type=int, default=5000, help="constraint count")
    p_solve.add_argument("--d", type=int, default=3, help="ambient dimension")
    p_solve.add_argument("--seed", type=int, default=0)
    p_solve.add_argument(
        "--practical",
        action="store_true",
        help="use the constant-free practical profile",
    )
    p_solve.add_argument(
        "--set",
        action="append",
        metavar="KEY=VALUE",
        help="config field override (repeatable), e.g. --set r=3 --set num_sites=8",
    )
    p_solve.add_argument(
        "--json", action="store_true", help="print the full SolveResult.to_dict()"
    )
    p_solve.set_defaults(func=_cmd_solve)

    p_serve = sub.add_parser(
        "serve", help="boot the HTTP/SSE solver front end (see docs/service.md)"
    )
    p_serve.add_argument("--host", default="127.0.0.1")
    p_serve.add_argument(
        "--port", type=int, default=8731, help="bind port (0 picks a free one)"
    )
    p_serve.add_argument(
        "--model", default="streaming", help="default model for requests"
    )
    p_serve.add_argument(
        "--workers",
        type=int,
        default=2,
        help="worker threads per model's SolverService",
    )
    p_serve.add_argument(
        "--tenants",
        metavar="FILE.json",
        help=(
            "JSON file mapping API keys to tenants and quotas: "
            '{"<key>": {"tenant": "acme", "max_concurrent": 4, ...}}'
        ),
    )
    anon = p_serve.add_mutually_exclusive_group()
    anon.add_argument(
        "--anonymous",
        dest="anonymous",
        action="store_true",
        default=None,
        help="admit unauthenticated requests as the shared 'public' tenant",
    )
    anon.add_argument(
        "--no-anonymous",
        dest="anonymous",
        action="store_false",
        help="require an API key on every request",
    )
    p_serve.add_argument(
        "--usage-log",
        metavar="FILE.jsonl",
        help="append one JSON line per finished ticket (the usage ledger)",
    )
    p_serve.add_argument(
        "--verbose", action="store_true", help="log every HTTP request"
    )
    p_serve.add_argument(
        "--set",
        action="append",
        metavar="KEY=VALUE",
        help="base config field override shared by every model (repeatable)",
    )
    p_serve.set_defaults(func=_cmd_serve)

    p_node = sub.add_parser(
        "node",
        help=(
            "run a cluster node agent (the remote end of "
            "TransportConfig(kind='tcp'); see docs/fabric.md)"
        ),
    )
    peer = p_node.add_mutually_exclusive_group(required=True)
    peer.add_argument(
        "--connect",
        metavar="HOST:PORT",
        help="dial the coordinator's cluster registry at this address",
    )
    peer.add_argument(
        "--listen",
        metavar="HOST:PORT",
        help=(
            "bind this address and wait for the registry to dial in "
            "(port 0 picks a free one; the bound address is announced on stdout)"
        ),
    )
    p_node.add_argument(
        "--name", default=None, help="agent name reported at registration"
    )
    p_node.add_argument(
        "--set",
        action="append",
        metavar="KEY=VALUE",
        help=(
            "agent field override (repeatable), e.g. "
            "--set heartbeat_interval_s=0.2"
        ),
    )
    p_node.set_defaults(func=_cmd_node)

    sub.add_parser(
        "bench",
        help=(
            "run the canonical perf suite (every argument after 'bench' is "
            "forwarded to benchmarks/run_suite.py verbatim; e.g. "
            "'bench --tier xlarge --backends numpy fused', or "
            "'bench --history' to print the checked-in snapshot geomeans "
            "per tier and kernel backend)"
        ),
    )
    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    argv = list(sys.argv[1:] if argv is None else argv)
    # 'bench' forwards its whole tail to run_suite.py: routed before argparse
    # because REMAINDER cannot capture a leading optional like '--tier'.
    if argv[:1] == ["bench"]:
        return _run_bench(argv[1:])
    args = build_parser().parse_args(argv)
    return int(args.func(args) or 0)
