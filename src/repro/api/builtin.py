"""Registration of the sequential reference model.

The streaming / coordinator / MPC bindings and the baselines self-register
in their own modules (``repro.algorithms``); the sequential driver lives in
``repro.core.clarkson``, which the config layer itself imports, so its
registration lives here to keep the import graph acyclic.
"""

from __future__ import annotations

from ..core.clarkson import _clarkson_solve
from .config import SolverConfig
from .registry import register_model


def _run_sequential(problem, config: SolverConfig, warm_witnesses=None):
    """Runner and warm-runner in one: the session passes ``warm_witnesses``.

    One function serves both registry slots so the cold and warm paths can
    never drift apart in how they unpack the config.
    """
    return _clarkson_solve(
        problem,
        params=config.to_parameters(),
        rng=config.seed,
        warm_witnesses=warm_witnesses,
    )


register_model(
    "sequential",
    _run_sequential,
    config_cls=SolverConfig,
    description=(
        "In-memory Algorithm 1: Clarkson iterative reweighting with explicit "
        "weights (the ground truth the model bindings are tested against)."
    ),
    currencies=("space_peak_items",),
    replaces="clarkson_solve",
    warm_runner=_run_sequential,
    capabilities=("warm_restart", "ingest"),
)
