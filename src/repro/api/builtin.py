"""Registration of the sequential reference model.

The streaming / coordinator / MPC bindings and the baselines self-register
in their own modules (``repro.algorithms``); the sequential driver lives in
``repro.core.clarkson``, which the config layer itself imports, so its
registration lives here to keep the import graph acyclic.
"""

from __future__ import annotations

from ..core.clarkson import _clarkson_solve
from .config import SolverConfig
from .registry import register_model


@register_model(
    "sequential",
    config_cls=SolverConfig,
    description=(
        "In-memory Algorithm 1: Clarkson iterative reweighting with explicit "
        "weights (the ground truth the model bindings are tested against)."
    ),
    currencies=("space_peak_items",),
    replaces="clarkson_solve",
)
def _run_sequential(problem, config: SolverConfig):
    return _clarkson_solve(problem, params=config.to_parameters(), rng=config.seed)
