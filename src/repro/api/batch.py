"""Batch solving: many independent instances through one call.

:func:`solve_many` is the first step toward the ROADMAP's heavy-traffic
service: it runs independent LP-type instances through a registered model
with a ``concurrent.futures`` thread pool, derives one private random stream
per instance from a single root seed via ``numpy.random.SeedSequence.spawn``
(so results are bit-identical no matter how many workers run), and returns a
:class:`BatchResult` that aggregates the per-instance
:class:`~repro.core.result.ResourceUsage` records into batch totals and
peaks.
"""

from __future__ import annotations

from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, replace
from typing import TYPE_CHECKING, Any, Iterable, Iterator, Optional, Sequence, overload

import numpy as np

from ..core.exceptions import InvalidConfigError
from ..core.result import ResourceUsage, SolveResult
from .config import SolverConfig
from .facade import build_config

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..core.lptype import LPTypeProblem

__all__ = ["BatchResult", "solve_many"]


@dataclass
class BatchResult(Sequence):
    """The outcome of one :func:`solve_many` call.

    Behaves as a sequence of the per-instance
    :class:`~repro.core.result.SolveResult` records (``batch[0]``,
    ``len(batch)``, iteration) and carries the aggregate resource summaries
    of the batch.
    """

    model: str
    results: list[SolveResult]
    root_seed: Optional[int] = None

    @overload
    def __getitem__(self, index: int) -> SolveResult: ...

    @overload
    def __getitem__(self, index: slice) -> list[SolveResult]: ...

    def __getitem__(self, index):
        return self.results[index]

    def __len__(self) -> int:
        return len(self.results)

    def __iter__(self) -> Iterator[SolveResult]:
        return iter(self.results)

    def resources_total(self) -> ResourceUsage:
        """Sum of the additive resource currencies over the batch.

        ``ResourceUsage.aggregate(..., mode="sum")``: total passes, rounds,
        communication bits, space, and machine counts across instances;
        the per-message / per-machine peaks aggregate by maximum.
        """
        return ResourceUsage.aggregate((r.resources for r in self.results), mode="sum")

    def resources_peak(self) -> ResourceUsage:
        """Point-wise maximum of every resource field over the batch."""
        return ResourceUsage.aggregate((r.resources for r in self.results), mode="max")

    def summary(self) -> dict:
        """A flat dict convenient for printing batch tables."""
        total = self.resources_total()
        peak = self.resources_peak()
        return {
            "model": self.model,
            "instances": len(self.results),
            "iterations": sum(r.iterations for r in self.results),
            "total_passes": total.passes,
            "total_rounds": total.rounds,
            "total_communication_bits": total.total_communication_bits,
            "total_space_peak_items": total.space_peak_items,
            "peak_space_items": peak.space_peak_items,
            "peak_machine_load_bits": peak.max_machine_load_bits,
        }


def derive_instance_seeds(
    root_seed: Optional[int], count: int
) -> list[np.random.SeedSequence]:
    """Spawn one independent :class:`~numpy.random.SeedSequence` per instance.

    The children depend only on ``root_seed`` and the instance position, so
    the batch is reproducible end to end and independent of worker
    scheduling.  ``root_seed=None`` draws fresh entropy for the root.
    """
    return list(np.random.SeedSequence(root_seed).spawn(count)) if count else []


def solve_many(
    problems: Iterable["LPTypeProblem"],
    model: str = "streaming",
    config: Optional[SolverConfig] = None,
    max_workers: Optional[int] = None,
    root_seed: Optional[int] = None,
    session: Optional[Any] = None,
    **overrides: Any,
) -> BatchResult:
    """Solve many independent instances in the named model.

    Parameters
    ----------
    problems:
        The instances to solve (independent; order is preserved in the
        returned batch).
    model:
        A registered model name, as in :func:`repro.solve`.
    config:
        Optional shared typed configuration; its ``seed`` field is replaced
        by the per-instance derived seed.
    max_workers:
        Thread-pool width (``None``: the executor default; ``1``: run
        serially in the calling thread).  The result is identical for every
        value — only wall-clock time changes.
    root_seed:
        Root of the deterministic per-instance seed derivation
        (``SeedSequence(root_seed).spawn(n)``).  ``None`` (default) falls
        back to the config's integer ``seed`` if one was given (so
        ``solve_many(..., seed=42)`` is reproducible), else fresh entropy.
        An explicit ``root_seed`` wins over the config seed.
    session:
        Optional open :class:`~repro.api.session.Session` whose transport
        (and model) the batch reuses — ``Session.solve_many`` passes it.
        ``None`` runs the batch on an ephemeral session, which is
        bit-identical to the historical one-shot behaviour.
    **overrides:
        Individual config fields, as in :func:`repro.solve`.

    Returns
    -------
    BatchResult
        Per-instance results plus batch resource totals/peaks.
    """
    from .session import Session

    problems = list(problems)
    if max_workers is not None and max_workers < 1:
        raise InvalidConfigError(f"max_workers must be >= 1 (got {max_workers!r})")

    ephemeral = session is None
    if ephemeral:
        sess = Session(model=model, config=config, warm_tracking=False, **overrides)
        base = sess.config
    else:
        sess = session
        base = build_config(
            sess.spec, config if config is not None else sess.config, overrides
        )
    spec = sess.spec
    try:
        if root_seed is None and isinstance(base.seed, int):
            root_seed = base.seed
        seeds = derive_instance_seeds(root_seed, len(problems))
        configs = [replace(base, seed=seed) for seed in seeds]

        if len(problems) <= 1 or max_workers == 1:
            results = [sess.run_cold(p, c) for p, c in zip(problems, configs)]
        else:
            with ThreadPoolExecutor(max_workers=max_workers) as pool:
                results = list(pool.map(sess.run_cold, problems, configs))
    finally:
        if ephemeral:
            sess.close()
    return BatchResult(model=spec.name, results=results, root_seed=root_seed)
