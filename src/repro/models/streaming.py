"""The multi-pass streaming substrate: a fabric binding.

A :class:`MultiPassStream` presents the constraint indices of a problem in a
fixed (arbitrary, possibly adversarial) order.  Every call to :meth:`scan`
is one pass; the algorithm may make as many passes as it likes.  Pass
accounting (and the per-pass ledger surfaced through
``SolveResult.communication``) lives in
:class:`repro.fabric.topology.StreamTopology`; memory is accounted
separately through a :class:`StreamingMemory` tracker: the algorithm reports
what it currently stores (in items and in bits) and the tracker keeps the
peak.

The substrate never hands out the whole constraint set at once — drivers are
expected to touch constraints only through the indices yielded by a scan, so
the accounting is faithful to the model.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator, Sequence

import numpy as np

from ..core.accounting import CostMeter
from ..fabric.topology import StreamTopology

__all__ = ["MultiPassStream", "StreamingMemory"]


class MultiPassStream:
    """A re-scannable stream of constraint indices over a stream topology.

    Parameters
    ----------
    num_items:
        Number of constraints in the stream.
    order:
        Optional permutation of ``range(num_items)`` giving the arrival
        order; defaults to the natural order.
    """

    def __init__(self, num_items: int, order: Sequence[int] | np.ndarray | None = None) -> None:
        self.topology = StreamTopology(num_items, order=order)
        self._order = self.topology.order()

    @property
    def num_items(self) -> int:
        return self.topology.num_items

    @property
    def passes(self) -> int:
        """Number of completed or started passes so far."""
        return self.topology.passes

    def scan(self) -> Iterator[int]:
        """Yield the constraint indices in stream order; counts as one pass."""
        self.topology.record_pass()
        yield from (int(i) for i in self._order)

    def scan_chunks(self, chunk_size: int) -> Iterator[np.ndarray]:
        """Yield the stream order in bounded contiguous chunks; one pass.

        The block-buffered twin of :meth:`scan`: the same indices in the same
        order, but handed out as read-only index arrays of at most
        ``chunk_size`` items so that drivers can evaluate a whole block in
        one vectorised sweep without a per-item Python loop.
        """
        if chunk_size < 1:
            raise ValueError(f"chunk_size must be >= 1, got {chunk_size}")
        self.topology.record_pass()
        yield from StreamTopology.iter_chunks(self._order, chunk_size)

    def order(self) -> np.ndarray:
        """The arrival order (a copy)."""
        return self._order.copy()


@dataclass
class StreamingMemory:
    """Peak-memory tracker for a streaming algorithm.

    The driver reports its currently stored items / bits; the tracker records
    the peak footprint, which is the quantity Theorem 1 bounds.
    """

    items: CostMeter = field(default_factory=lambda: CostMeter("items"))
    bits: CostMeter = field(default_factory=lambda: CostMeter("bits"))

    def set_usage(self, items: int, bits: int) -> None:
        """Report the current memory footprint."""
        self.items.set_level(items)
        self.bits.set_level(bits)

    @property
    def peak_items(self) -> int:
        return self.items.peak

    @property
    def peak_bits(self) -> int:
        return self.bits.peak
