"""The multi-pass streaming substrate.

A :class:`MultiPassStream` presents the constraint indices of a problem in a
fixed (arbitrary, possibly adversarial) order.  Every call to :meth:`scan`
is one pass; the algorithm may make as many passes as it likes and the
substrate counts them.  Memory is accounted separately through a
:class:`StreamingMemory` tracker: the algorithm reports what it currently
stores (in items and in bits) and the tracker keeps the peak.

The substrate never hands out the whole constraint set at once — drivers are
expected to touch constraints only through the indices yielded by a scan, so
the accounting is faithful to the model.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator, Sequence

import numpy as np

from ..core.accounting import CostMeter

__all__ = ["MultiPassStream", "StreamingMemory"]


class MultiPassStream:
    """A re-scannable stream of constraint indices.

    Parameters
    ----------
    num_items:
        Number of constraints in the stream.
    order:
        Optional permutation of ``range(num_items)`` giving the arrival
        order; defaults to the natural order.
    """

    def __init__(self, num_items: int, order: Sequence[int] | np.ndarray | None = None) -> None:
        if num_items < 0:
            raise ValueError("num_items must be non-negative")
        if order is None:
            self._order = np.arange(num_items, dtype=int)
        else:
            self._order = np.asarray(order, dtype=int)
            if self._order.size != num_items:
                raise ValueError(
                    f"order has {self._order.size} entries, expected {num_items}"
                )
            if num_items and (
                self._order.min() < 0
                or self._order.max() >= num_items
                or np.unique(self._order).size != num_items
            ):
                raise ValueError("order must be a permutation of range(num_items)")
        self._passes = 0

    @property
    def num_items(self) -> int:
        return int(self._order.size)

    @property
    def passes(self) -> int:
        """Number of completed or started passes so far."""
        return self._passes

    def scan(self) -> Iterator[int]:
        """Yield the constraint indices in stream order; counts as one pass."""
        self._passes += 1
        yield from (int(i) for i in self._order)

    def scan_chunks(self, chunk_size: int) -> Iterator[np.ndarray]:
        """Yield the stream order in bounded contiguous chunks; one pass.

        The block-buffered twin of :meth:`scan`: the same indices in the same
        order, but handed out as read-only index arrays of at most
        ``chunk_size`` items so that drivers can evaluate a whole block in
        one vectorised sweep without a per-item Python loop.
        """
        if chunk_size < 1:
            raise ValueError(f"chunk_size must be >= 1, got {chunk_size}")
        self._passes += 1
        for start in range(0, self._order.size, chunk_size):
            chunk = self._order[start : start + chunk_size]
            chunk.flags.writeable = False  # enforce the read-only contract
            yield chunk

    def order(self) -> np.ndarray:
        """The arrival order (a copy)."""
        return self._order.copy()


@dataclass
class StreamingMemory:
    """Peak-memory tracker for a streaming algorithm.

    The driver reports its currently stored items / bits; the tracker records
    the peak footprint, which is the quantity Theorem 1 bounds.
    """

    items: CostMeter = field(default_factory=lambda: CostMeter("items"))
    bits: CostMeter = field(default_factory=lambda: CostMeter("bits"))

    def set_usage(self, items: int, bits: int) -> None:
        """Report the current memory footprint."""
        self.items.set_level(items)
        self.bits.set_level(bits)

    @property
    def peak_items(self) -> int:
        return self.items.peak

    @property
    def peak_bits(self) -> int:
        return self.bits.peak
