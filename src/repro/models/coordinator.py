"""The coordinator-model substrate: a thin binding over the fabric.

``k`` sites each hold a part of the constraint set; a coordinator exchanges
messages with the sites in rounds.  The round management and the bit ledger
live in :class:`repro.fabric.topology.StarTopology`; this module keeps the
historical :class:`CoordinatorNetwork` / :class:`Message` API as a shim over
it for baselines and user code.

:class:`Message` carries a *caller-declared* bit size — the legacy contract.
Because a declared size can silently under-count what the payload actually
holds, the network accepts ``strict_bits=True``: every message's payload is
then measured (serialized the way the fabric would serialize it) and a
divergence between declared and measured bits raises
:class:`~repro.core.exceptions.CommunicationError`.  The fabric drivers
sidestep the hazard entirely — their payloads are measured by default.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Sequence

import numpy as np

from ..core.accounting import BitCostModel
from ..core.exceptions import CommunicationError
from ..fabric.payload import RawBits, measure_object_bits
from ..fabric.topology import StarTopology

__all__ = ["Message", "Site", "CoordinatorNetwork"]


@dataclass(frozen=True)
class Message:
    """A message with an explicit bit size and an arbitrary payload."""

    payload: Any
    bits: int

    def __post_init__(self) -> None:
        if self.bits < 0:
            raise ValueError("message size must be non-negative")

    @classmethod
    def measured(cls, payload: Any, cost_model: BitCostModel | None = None) -> "Message":
        """A message whose bit size is measured from the payload, not declared."""
        model = cost_model or BitCostModel()
        return cls(payload=payload, bits=measure_object_bits(payload, model))


@dataclass
class Site:
    """One site of the coordinator model: its id and its local constraint indices."""

    site_id: int
    local_indices: np.ndarray
    state: dict = field(default_factory=dict)

    def __post_init__(self) -> None:
        self.local_indices = np.asarray(self.local_indices, dtype=int)

    @property
    def num_local(self) -> int:
        return int(self.local_indices.size)


class CoordinatorNetwork:
    """Round-based communication between a coordinator and ``k`` sites.

    A shim over :class:`~repro.fabric.topology.StarTopology`: rounds, bit
    totals, and the per-round ledger are the topology's; the legacy
    declared-bits :class:`Message` is wrapped in a
    :class:`~repro.fabric.payload.RawBits` payload so the accounting is
    unchanged.  With ``strict_bits=True`` a declared size that diverges from
    the measured size of the payload raises :class:`CommunicationError`.
    """

    def __init__(
        self,
        local_indices: Sequence[np.ndarray],
        cost_model: BitCostModel | None = None,
        strict_bits: bool = False,
    ) -> None:
        if not local_indices:
            raise ValueError("need at least one site")
        self.sites = [Site(site_id=i, local_indices=idx) for i, idx in enumerate(local_indices)]
        self.cost_model = cost_model or BitCostModel()
        self.strict_bits = bool(strict_bits)
        self.topology = StarTopology(len(self.sites), cost_model=self.cost_model)

    # ------------------------------------------------------------------ #
    # Round management
    # ------------------------------------------------------------------ #

    @property
    def ledger(self):
        return self.topology.ledger

    @property
    def num_sites(self) -> int:
        return len(self.sites)

    @property
    def rounds(self) -> int:
        return self.topology.rounds

    @property
    def total_bits(self) -> int:
        return self.topology.total_bits

    @property
    def max_message_bits(self) -> int:
        return self.topology.max_message_bits

    def begin_round(self) -> None:
        self.topology.begin_round()

    def end_round(self) -> None:
        self.topology.end_round()

    # ------------------------------------------------------------------ #
    # Messaging
    # ------------------------------------------------------------------ #

    def _wrap(self, message: Message) -> RawBits:
        if self.strict_bits:
            measured = measure_object_bits(message.payload, self.cost_model)
            if measured != message.bits:
                raise CommunicationError(
                    f"declared message size ({message.bits} bits) diverges from "
                    f"the measured size of its payload ({measured} bits); "
                    "declare the measured size or build the message with "
                    "Message.measured(...)"
                )
        return RawBits(payload=message.payload, bits=message.bits)

    def coordinator_to_site(self, site_id: int, message: Message) -> Message:
        """Deliver a coordinator message to a site (counted as downstream bits)."""
        self.topology.send_down(site_id, self._wrap(message))
        return message

    def site_to_coordinator(self, site_id: int, message: Message) -> Message:
        """Deliver a site's reply to the coordinator (counted as upstream bits)."""
        self.topology.send_up(site_id, self._wrap(message))
        return message

    def broadcast(self, message: Message) -> None:
        """Send the same message from the coordinator to every site."""
        for site in self.sites:
            self.coordinator_to_site(site.site_id, message)
