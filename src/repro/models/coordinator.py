"""The coordinator-model substrate.

``k`` sites each hold a part of the constraint set; a coordinator exchanges
messages with the sites in rounds.  In every round the coordinator sends one
message to each site and each site replies with one message.  The substrate
tracks:

* the number of rounds,
* the total number of bits exchanged (in both directions),
* the largest single message.

Messages carry real payloads (the drivers are written so that a site only
ever reads its own constraints plus what it received), but the accounting is
what the benchmarks consume.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Sequence

import numpy as np

from ..core.accounting import BitCostModel, RoundLedger
from ..core.exceptions import CommunicationError

__all__ = ["Message", "Site", "CoordinatorNetwork"]


@dataclass(frozen=True)
class Message:
    """A message with an explicit bit size and an arbitrary payload."""

    payload: Any
    bits: int

    def __post_init__(self) -> None:
        if self.bits < 0:
            raise ValueError("message size must be non-negative")


@dataclass
class Site:
    """One site of the coordinator model: its id and its local constraint indices."""

    site_id: int
    local_indices: np.ndarray
    state: dict = field(default_factory=dict)

    def __post_init__(self) -> None:
        self.local_indices = np.asarray(self.local_indices, dtype=int)

    @property
    def num_local(self) -> int:
        return int(self.local_indices.size)


class CoordinatorNetwork:
    """Round-based communication between a coordinator and ``k`` sites."""

    def __init__(
        self,
        local_indices: Sequence[np.ndarray],
        cost_model: BitCostModel | None = None,
    ) -> None:
        if not local_indices:
            raise ValueError("need at least one site")
        self.sites = [Site(site_id=i, local_indices=idx) for i, idx in enumerate(local_indices)]
        self.cost_model = cost_model or BitCostModel()
        self.ledger = RoundLedger()
        self._round_open = False
        self._round_bits_down = 0
        self._round_bits_up = 0
        self.max_message_bits = 0
        self.total_bits = 0

    # ------------------------------------------------------------------ #
    # Round management
    # ------------------------------------------------------------------ #

    @property
    def num_sites(self) -> int:
        return len(self.sites)

    @property
    def rounds(self) -> int:
        return self.ledger.num_rounds

    def begin_round(self) -> None:
        if self._round_open:
            raise CommunicationError("previous round is still open")
        self._round_open = True
        self._round_bits_down = 0
        self._round_bits_up = 0

    def end_round(self) -> None:
        if not self._round_open:
            raise CommunicationError("no round is open")
        self.ledger.record(
            bits_down=self._round_bits_down,
            bits_up=self._round_bits_up,
            bits=self._round_bits_down + self._round_bits_up,
        )
        self._round_open = False

    # ------------------------------------------------------------------ #
    # Messaging
    # ------------------------------------------------------------------ #

    def coordinator_to_site(self, site_id: int, message: Message) -> Message:
        """Deliver a coordinator message to a site (counted as downstream bits)."""
        self._check_open(site_id)
        self._round_bits_down += message.bits
        self._register(message.bits)
        return message

    def site_to_coordinator(self, site_id: int, message: Message) -> Message:
        """Deliver a site's reply to the coordinator (counted as upstream bits)."""
        self._check_open(site_id)
        self._round_bits_up += message.bits
        self._register(message.bits)
        return message

    def broadcast(self, message: Message) -> None:
        """Send the same message from the coordinator to every site."""
        for site in self.sites:
            self.coordinator_to_site(site.site_id, message)

    # ------------------------------------------------------------------ #
    # Internals
    # ------------------------------------------------------------------ #

    def _check_open(self, site_id: int) -> None:
        if not self._round_open:
            raise CommunicationError("messages may only be sent inside an open round")
        if not 0 <= site_id < self.num_sites:
            raise CommunicationError(f"site {site_id} does not exist")

    def _register(self, bits: int) -> None:
        self.total_bits += bits
        self.max_message_bits = max(self.max_message_bits, bits)
