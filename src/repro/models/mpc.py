"""The massively-parallel-computation (MPC) substrate: a fabric binding.

``k`` machines hold the partitioned input; computation proceeds in rounds
and in every round each machine may exchange messages with any other
machine.  The quantity of interest is the *load*: the maximum number of bits
sent or received by any machine in any round.

The round mechanics, the per-machine load accounting, and the two tree
primitives the paper's MPC implementation relies on (Section 3.4, following
Goodrich et al. [23]) all live in
:class:`repro.fabric.topology.GridTopology`; :class:`MPCCluster` is the
historical bits-declared shim over it, kept for baselines and user code.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Sequence

import numpy as np

from ..core.accounting import BitCostModel
from ..fabric.payload import RawBits
from ..fabric.topology import GridTopology

__all__ = ["Machine", "MPCCluster"]


@dataclass
class Machine:
    """One MPC machine: its id, its local constraint indices, and scratch state."""

    machine_id: int
    local_indices: np.ndarray
    state: dict = field(default_factory=dict)

    def __post_init__(self) -> None:
        self.local_indices = np.asarray(self.local_indices, dtype=int)

    @property
    def num_local(self) -> int:
        return int(self.local_indices.size)


class MPCCluster:
    """Round-based all-to-all communication between ``k`` machines.

    A shim over :class:`~repro.fabric.topology.GridTopology` that keeps the
    legacy declared-``bits`` call signatures (``send(src, dst, bits)``,
    ``broadcast_tree(root, message_bits, fanout)``, ...) by wrapping the
    declared sizes in :class:`~repro.fabric.payload.RawBits` payloads.
    """

    def __init__(
        self,
        local_indices: Sequence[np.ndarray],
        cost_model: BitCostModel | None = None,
    ) -> None:
        if not local_indices:
            raise ValueError("need at least one machine")
        self.machines = [
            Machine(machine_id=i, local_indices=idx) for i, idx in enumerate(local_indices)
        ]
        self.cost_model = cost_model or BitCostModel()
        self.topology = GridTopology(len(self.machines), cost_model=self.cost_model)

    # ------------------------------------------------------------------ #
    # Round management
    # ------------------------------------------------------------------ #

    @property
    def ledger(self):
        return self.topology.ledger

    @property
    def num_machines(self) -> int:
        return len(self.machines)

    @property
    def rounds(self) -> int:
        return self.topology.rounds

    @property
    def total_bits(self) -> int:
        return self.topology.total_bits

    @property
    def max_load_bits(self) -> int:
        return self.topology.max_load_bits

    def begin_round(self) -> None:
        self.topology.begin_round()

    def end_round(self) -> None:
        self.topology.end_round()

    # ------------------------------------------------------------------ #
    # Messaging
    # ------------------------------------------------------------------ #

    def send(self, source: int, destination: int, bits: int) -> None:
        """Record ``bits`` sent from ``source`` to ``destination`` this round."""
        if bits < 0:
            raise ValueError("bits must be non-negative")
        self.topology.send(source, destination, RawBits(payload=None, bits=bits))

    # ------------------------------------------------------------------ #
    # Collective primitives
    # ------------------------------------------------------------------ #

    def broadcast_tree(self, root: int, message_bits: int, fanout: int) -> int:
        """Broadcast a message from ``root`` to all machines via a fan-out tree.

        Returns the number of rounds used (``ceil(log_fanout k)``, at least 1
        when there is more than one machine).  Only the communication cost is
        simulated; the caller is responsible for making the payload available
        to the machines (the simulator shares memory).
        """
        return self.topology.broadcast_tree(
            root, RawBits(payload=None, bits=message_bits), fanout
        )

    def aggregate_tree(
        self,
        root: int,
        value_bits: int,
        fanout: int,
        values: Sequence[Any] | None = None,
        combine: Callable[[Any, Any], Any] | None = None,
    ) -> tuple[int, Any]:
        """Aggregate one fixed-size value per machine into ``root`` via a tree.

        ``values`` and ``combine`` optionally compute the actual aggregate
        (e.g. summing per-machine weight totals); only the cost accounting
        depends on ``value_bits`` and ``fanout``.  Returns
        ``(rounds_used, aggregate)``.
        """
        return self.topology.aggregate_tree(
            root,
            RawBits(payload=None, bits=value_bits),
            fanout,
            values=values,
            combine=combine,
        )
