"""The massively-parallel-computation (MPC) substrate.

``k`` machines hold the partitioned input; computation proceeds in rounds
and in every round each machine may exchange messages with any other
machine.  The quantity of interest is the *load*: the maximum number of bits
sent or received by any machine in any round.  The substrate tracks rounds,
per-round per-machine sent/received bits, and the overall maximum load.

Besides raw point-to-point messaging, the substrate provides the two
primitives the paper's MPC implementation relies on (Section 3.4, following
Goodrich et al. [23]):

* :meth:`broadcast_tree` — deliver a message from one machine to all others
  through a fan-out tree, using ``O(log_fanout k)`` rounds with per-machine
  load ``fanout * message_bits``;
* :meth:`aggregate_tree` — combine one fixed-size value per machine into a
  single machine through the same tree in reverse.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Sequence

import numpy as np

from ..core.accounting import BitCostModel, RoundLedger
from ..core.exceptions import CommunicationError

__all__ = ["Machine", "MPCCluster"]


@dataclass
class Machine:
    """One MPC machine: its id, its local constraint indices, and scratch state."""

    machine_id: int
    local_indices: np.ndarray
    state: dict = field(default_factory=dict)

    def __post_init__(self) -> None:
        self.local_indices = np.asarray(self.local_indices, dtype=int)

    @property
    def num_local(self) -> int:
        return int(self.local_indices.size)


class MPCCluster:
    """Round-based all-to-all communication between ``k`` machines."""

    def __init__(
        self,
        local_indices: Sequence[np.ndarray],
        cost_model: BitCostModel | None = None,
    ) -> None:
        if not local_indices:
            raise ValueError("need at least one machine")
        self.machines = [
            Machine(machine_id=i, local_indices=idx) for i, idx in enumerate(local_indices)
        ]
        self.cost_model = cost_model or BitCostModel()
        self.ledger = RoundLedger()
        self._round_open = False
        self._sent = np.zeros(len(self.machines), dtype=np.int64)
        self._received = np.zeros(len(self.machines), dtype=np.int64)
        self.max_load_bits = 0
        self.total_bits = 0

    # ------------------------------------------------------------------ #
    # Round management
    # ------------------------------------------------------------------ #

    @property
    def num_machines(self) -> int:
        return len(self.machines)

    @property
    def rounds(self) -> int:
        return self.ledger.num_rounds

    def begin_round(self) -> None:
        if self._round_open:
            raise CommunicationError("previous round is still open")
        self._round_open = True
        self._sent[:] = 0
        self._received[:] = 0

    def end_round(self) -> None:
        if not self._round_open:
            raise CommunicationError("no round is open")
        round_load = int(max(self._sent.max(initial=0), self._received.max(initial=0)))
        self.max_load_bits = max(self.max_load_bits, round_load)
        self.ledger.record(
            load=round_load,
            bits=int(self._sent.sum()),
        )
        self._round_open = False

    # ------------------------------------------------------------------ #
    # Messaging
    # ------------------------------------------------------------------ #

    def send(self, source: int, destination: int, bits: int) -> None:
        """Record ``bits`` sent from ``source`` to ``destination`` this round."""
        if not self._round_open:
            raise CommunicationError("messages may only be sent inside an open round")
        for machine_id in (source, destination):
            if not 0 <= machine_id < self.num_machines:
                raise CommunicationError(f"machine {machine_id} does not exist")
        if bits < 0:
            raise ValueError("bits must be non-negative")
        self._sent[source] += bits
        self._received[destination] += bits
        self.total_bits += bits

    # ------------------------------------------------------------------ #
    # Collective primitives
    # ------------------------------------------------------------------ #

    def broadcast_tree(self, root: int, message_bits: int, fanout: int) -> int:
        """Broadcast a message from ``root`` to all machines via a fan-out tree.

        Returns the number of rounds used (``ceil(log_fanout k)``, at least 1
        when there is more than one machine).  Only the communication cost is
        simulated; the caller is responsible for making the payload available
        to the machines (the simulator shares memory).
        """
        if fanout < 2:
            raise ValueError("fanout must be >= 2")
        informed = {root}
        rounds_used = 0
        while len(informed) < self.num_machines:
            self.begin_round()
            newly_informed: set[int] = set()
            targets = [m for m in range(self.num_machines) if m not in informed]
            slots = iter(targets)
            for sender in sorted(informed):
                for _ in range(fanout):
                    try:
                        target = next(slots)
                    except StopIteration:
                        break
                    self.send(sender, target, message_bits)
                    newly_informed.add(target)
            informed |= newly_informed
            self.end_round()
            rounds_used += 1
        return rounds_used

    def aggregate_tree(
        self,
        root: int,
        value_bits: int,
        fanout: int,
        values: Sequence[Any] | None = None,
        combine: Callable[[Any, Any], Any] | None = None,
    ) -> tuple[int, Any]:
        """Aggregate one value per machine into ``root`` via a converge-cast tree.

        ``values`` and ``combine`` optionally compute the actual aggregate
        (e.g. summing per-machine weight totals); only the cost accounting
        depends on ``value_bits`` and ``fanout``.  Returns
        ``(rounds_used, aggregate)``.
        """
        if fanout < 2:
            raise ValueError("fanout must be >= 2")
        active = list(range(self.num_machines))
        partials = list(values) if values is not None else [None] * self.num_machines
        rounds_used = 0
        while len(active) > 1:
            self.begin_round()
            survivors: list[int] = []
            # Group the active machines; the first member of each group
            # receives the other members' partial aggregates.
            for start in range(0, len(active), fanout):
                group = active[start : start + fanout]
                head = group[0] if root not in group else root
                for member in group:
                    if member == head:
                        continue
                    self.send(member, head, value_bits)
                    if combine is not None:
                        partials[head] = combine(partials[head], partials[member])
                survivors.append(head)
            active = survivors
            self.end_round()
            rounds_used += 1
        final_holder = active[0]
        if final_holder != root and self.num_machines > 1:
            self.begin_round()
            self.send(final_holder, root, value_bits)
            if values is not None:
                partials[root] = partials[final_holder]
            self.end_round()
            rounds_used += 1
        return rounds_used, partials[root] if values is not None else None
