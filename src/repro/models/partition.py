"""Partitioning of constraint indices across sites / machines.

The coordinator and MPC models assume the input is *arbitrarily* partitioned
across the machines; algorithms must work for every partition.  The helpers
here produce the partitions used by tests and benchmarks, including skewed
and adversarial ones.
"""

from __future__ import annotations

import numpy as np

from ..core.rng import SeedLike, as_generator

__all__ = ["partition_indices"]

_METHODS = ("round_robin", "contiguous", "random", "skewed")


def partition_indices(
    num_items: int,
    num_parts: int,
    method: str = "round_robin",
    seed: SeedLike = None,
    skew: float = 2.0,
) -> list[np.ndarray]:
    """Split ``range(num_items)`` into ``num_parts`` disjoint index arrays.

    Parameters
    ----------
    num_items:
        Number of constraints to distribute.
    num_parts:
        Number of sites / machines; every part is returned even if empty.
    method:
        ``"round_robin"`` (item ``i`` to part ``i mod k``), ``"contiguous"``
        (equal consecutive blocks), ``"random"`` (uniformly random
        assignment), or ``"skewed"`` (random assignment with a power-law
        preference for low-numbered parts, to exercise load imbalance).
    seed:
        Randomness for the random / skewed methods.
    skew:
        Exponent of the power-law used by the skewed method.
    """
    if num_items < 0:
        raise ValueError("num_items must be non-negative")
    if num_parts < 1:
        raise ValueError("num_parts must be >= 1")
    if method not in _METHODS:
        raise ValueError(f"unknown partition method {method!r}; choose from {_METHODS}")

    indices = np.arange(num_items, dtype=int)
    if method == "round_robin":
        return [indices[p::num_parts] for p in range(num_parts)]
    if method == "contiguous":
        boundaries = np.linspace(0, num_items, num_parts + 1, dtype=int)
        return [indices[boundaries[p] : boundaries[p + 1]] for p in range(num_parts)]

    rng = as_generator(seed)
    if method == "random":
        assignment = rng.integers(0, num_parts, size=num_items)
    else:  # skewed
        raw = rng.random(num_parts) ** skew
        probabilities = raw / raw.sum()
        assignment = rng.choice(num_parts, size=num_items, p=probabilities)
    return [indices[assignment == p] for p in range(num_parts)]
