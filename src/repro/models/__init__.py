"""Computation-model substrates: streaming, coordinator, and MPC simulators."""

from .coordinator import CoordinatorNetwork, Message, Site
from .mpc import Machine, MPCCluster
from .partition import partition_indices
from .streaming import MultiPassStream, StreamingMemory

__all__ = [
    "CoordinatorNetwork",
    "Message",
    "Site",
    "Machine",
    "MPCCluster",
    "partition_indices",
    "MultiPassStream",
    "StreamingMemory",
]
