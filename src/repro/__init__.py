"""repro — a reproduction of "Distributed and Streaming Linear Programming in Low Dimensions".

The library implements the paper's Clarkson-style meta-algorithm for LP-type
problems (driven by eps-net sampling), its instantiations in the multi-pass
streaming, coordinator, and MPC models, the concrete LP / linear-SVM /
minimum-enclosing-ball problems, and the communication lower-bound machinery
(two-curve intersection, Augmented Indexing, and the recursive hard
distributions).

The canonical entry point is the :func:`solve` facade: one call,
parameterized by a registered computation model and a typed
:class:`SolverConfig`.

Quick start::

    from repro import random_feasible_lp, solve

    instance = random_feasible_lp(num_constraints=5000, dimension=3, seed=0)
    result = solve(instance.problem, model="streaming", r=2, seed=0)
    print(result.value.objective, result.resources.passes)

Cross-model comparisons and batches::

    from repro import compare_models, solve_many

    by_model = compare_models(instance.problem, seed=0)     # the 4 theorems
    batch = solve_many([instance.problem] * 10, model="mpc", root_seed=0)
    print(batch.resources_total().rounds)

``available_models()`` / ``describe_model(name)`` introspect the registry;
the legacy per-model entry points (``streaming_clarkson_solve``, ...) remain
as deprecated shims.
"""

from .algorithms import (
    chan_chen_2d_streaming,
    chan_chen_pass_count,
    clarkson_classic_reweighting,
    clarkson_pass_count,
    coordinator_clarkson_solve,
    exact_in_memory,
    machines_for_load,
    mpc_clarkson_solve,
    ship_all_coordinator,
    single_pass_full_memory_streaming,
    streaming_clarkson_solve,
)
from .api import (
    BatchResult,
    CoordinatorConfig,
    IngestHandle,
    MPCConfig,
    ModelSpec,
    ProblemSpec,
    Session,
    SessionPool,
    SessionSpec,
    SolverConfig,
    SolverService,
    StreamingConfig,
    Ticket,
    TransportConfig,
    WarmState,
    available_models,
    available_problems,
    compare_models,
    describe_model,
    describe_problem,
    register_model,
    register_problem,
    solve,
    solve_many,
)
from .api.session import session
from .core import (
    BasisResult,
    ClarksonParameters,
    CommunicationSummary,
    LPTypeProblem,
    SolveResult,
    clarkson_solve,
)
from .core.budget import ResourceBudget
from .core.exceptions import (
    BudgetExceededError,
    ConfigFieldDroppedWarning,
    SessionError,
)
from .core.result import WarmStats
from .lower_bounds import (
    AugIndexInstance,
    TCIInstance,
    aug_index_to_tci,
    interactive_tci_protocol,
    one_round_tci_protocol,
    sample_hard_instance,
    tci_to_linear_program,
)
from .problems import (
    LinearProgram,
    LinearSVM,
    MinimumEnclosingBall,
    badoiu_clarkson_meb,
    seidel_solve,
)
from .workloads import (
    chebyshev_regression_lp,
    make_regression_data,
    make_separable_classification,
    random_feasible_lp,
    random_polytope_lp,
    svm_problem,
    uniform_ball_points,
)

__version__ = "1.1.0"

__all__ = [
    "BatchResult",
    "BudgetExceededError",
    "ConfigFieldDroppedWarning",
    "CoordinatorConfig",
    "IngestHandle",
    "MPCConfig",
    "ModelSpec",
    "ProblemSpec",
    "ResourceBudget",
    "Session",
    "SessionError",
    "SessionPool",
    "SessionSpec",
    "SolverConfig",
    "SolverService",
    "StreamingConfig",
    "Ticket",
    "TransportConfig",
    "WarmState",
    "WarmStats",
    "session",
    "available_models",
    "available_problems",
    "compare_models",
    "describe_model",
    "describe_problem",
    "register_model",
    "register_problem",
    "solve",
    "solve_many",
    "chan_chen_2d_streaming",
    "chan_chen_pass_count",
    "clarkson_classic_reweighting",
    "clarkson_pass_count",
    "coordinator_clarkson_solve",
    "exact_in_memory",
    "machines_for_load",
    "mpc_clarkson_solve",
    "ship_all_coordinator",
    "single_pass_full_memory_streaming",
    "streaming_clarkson_solve",
    "BasisResult",
    "ClarksonParameters",
    "CommunicationSummary",
    "LPTypeProblem",
    "SolveResult",
    "clarkson_solve",
    "AugIndexInstance",
    "TCIInstance",
    "aug_index_to_tci",
    "interactive_tci_protocol",
    "one_round_tci_protocol",
    "sample_hard_instance",
    "tci_to_linear_program",
    "LinearProgram",
    "LinearSVM",
    "MinimumEnclosingBall",
    "badoiu_clarkson_meb",
    "seidel_solve",
    "chebyshev_regression_lp",
    "make_regression_data",
    "make_separable_classification",
    "random_feasible_lp",
    "random_polytope_lp",
    "svm_problem",
    "uniform_ball_points",
    "__version__",
]
