"""E4 — Theorem 5: the same pass/round/communication bounds for linear SVM.

The SVM instantiation exercises the general LP-type path (quadratic objective,
QP basis solver) in all three models on separable labelled point clouds.
"""

from __future__ import annotations

import pytest

from repro.algorithms import (
    coordinator_clarkson_solve,
    mpc_clarkson_solve,
    streaming_clarkson_solve,
)
from repro.workloads import make_separable_classification, svm_problem

from conftest import emit_row, record, solver_params


@pytest.fixture(scope="module")
def svm_instance():
    data = make_separable_classification(3000, 2, seed=42, margin=0.4)
    problem = svm_problem(data)
    exact = problem.solve()
    return problem, exact


def test_svm_streaming(benchmark, svm_instance):
    problem, exact = svm_instance
    params = solver_params(problem, r=2)

    def run():
        return streaming_clarkson_solve(problem, r=2, params=params, rng=1)

    result = benchmark.pedantic(run, rounds=1, iterations=1)
    emit_row(
        "E4-svm-streaming",
        n=problem.num_constraints,
        passes=result.resources.passes,
        space_items=result.resources.space_peak_items,
        norm_ratio=round(result.value.squared_norm / exact.value.squared_norm, 4),
    )
    record(benchmark, passes=result.resources.passes)
    assert result.value.squared_norm == pytest.approx(exact.value.squared_norm, rel=1e-2)


def test_svm_coordinator(benchmark, svm_instance):
    problem, exact = svm_instance
    params = solver_params(problem, r=2)

    def run():
        return coordinator_clarkson_solve(problem, num_sites=8, r=2, params=params, rng=2)

    result = benchmark.pedantic(run, rounds=1, iterations=1)
    emit_row(
        "E4-svm-coordinator",
        n=problem.num_constraints,
        rounds=result.resources.rounds,
        comm_kbits=result.resources.total_communication_bits // 1000,
        norm_ratio=round(result.value.squared_norm / exact.value.squared_norm, 4),
    )
    record(benchmark, rounds=result.resources.rounds)
    assert result.value.squared_norm == pytest.approx(exact.value.squared_norm, rel=1e-2)


def test_svm_mpc(benchmark, svm_instance):
    problem, exact = svm_instance
    params = solver_params(problem, r=2)

    def run():
        return mpc_clarkson_solve(problem, delta=0.5, num_machines=16, params=params, rng=3)

    result = benchmark.pedantic(run, rounds=1, iterations=1)
    emit_row(
        "E4-svm-mpc",
        n=problem.num_constraints,
        rounds=result.resources.rounds,
        load_kbits=result.resources.max_machine_load_bits // 1000,
        norm_ratio=round(result.value.squared_norm / exact.value.squared_norm, 4),
    )
    record(benchmark, rounds=result.resources.rounds)
    assert result.value.squared_norm == pytest.approx(exact.value.squared_norm, rel=1e-2)
