"""A1 — Ablation: the n^{1/r} weight boost versus Clarkson's classical factor 2.

The only change the paper makes to Clarkson's reweighting is the much more
aggressive boost of violator weights (``n^{1/r}`` instead of 2), which is
what brings the number of successful iterations down from ``Theta(d log n)``
to ``O(d r)``.  The ablation runs both variants with identical sampling and
reports the iteration counts.
"""

from __future__ import annotations

import pytest

from repro.core.clarkson import ClarksonParameters, clarkson_solve, practical_parameters
from repro.workloads import random_polytope_lp

from conftest import emit_row, record


@pytest.mark.parametrize("n", [4000, 16000])
def test_boost_ablation(benchmark, n):
    instance = random_polytope_lp(n, 2, seed=n)
    base = practical_parameters(instance.problem, r=2, keep_trace=False)

    def run():
        paper = clarkson_solve(instance.problem, params=base, rng=21)
        classic = clarkson_solve(
            instance.problem,
            params=ClarksonParameters(
                r=2,
                boost=2.0,
                sample_size=base.sample_size,
                success_threshold=base.success_threshold,
                max_iterations=4000,
                keep_trace=False,
            ),
            rng=21,
        )
        return paper, classic

    paper, classic = benchmark.pedantic(run, rounds=1, iterations=1)
    emit_row(
        "A1-boost-ablation",
        n=n,
        paper_boost_iterations=paper.iterations,
        paper_boost_successful=paper.successful_iterations,
        classic_boost_iterations=classic.iterations,
        classic_boost_successful=classic.successful_iterations,
        same_objective=abs(paper.value.objective - classic.value.objective) < 1e-4,
    )
    record(
        benchmark,
        paper_iterations=paper.iterations,
        classic_iterations=classic.iterations,
    )
    assert abs(paper.value.objective - classic.value.objective) < 1e-4
    assert classic.successful_iterations >= paper.successful_iterations
