"""F1 — Figure 1: a TCI instance (1a) and its 2-dimensional LP formulation (1b).

The benchmark regenerates the figure's content programmatically: a small
7-point instance in the style of Figure 1a, the LP of Figure 1b built from
it, and the check that minimising ``y`` over the LP and flooring the optimal
``x`` recovers the TCI answer.  A sweep over random Aug-Index-derived
instances measures the reduction's cost and validates the decoding on every
instance.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.lower_bounds import aug_index_to_tci, random_aug_index, tci_to_linear_program
from repro.lower_bounds.tci import TCIInstance, lp_optimum_to_index

from conftest import emit_row, record


def figure1_style_instance() -> TCIInstance:
    alice = np.array([0.0, 1.0, 2.5, 4.5, 7.0, 10.0, 13.5])
    bob = np.array([12.0, 10.0, 8.0, 6.0, 4.0, 2.0, 0.0])
    return TCIInstance(alice=alice, bob=bob)


def test_figure1_example(benchmark):
    instance = figure1_style_instance()

    def run():
        lp = tci_to_linear_program(instance)
        solution = lp.solve()
        return lp, solution

    lp, solution = benchmark.pedantic(run, rounds=1, iterations=1)
    decoded = lp_optimum_to_index(solution.witness[0], instance.length)
    emit_row(
        "F1-figure1-example",
        n_points=instance.length,
        lp_constraints=lp.num_constraints,
        tci_answer=instance.solve(),
        lp_x_star=round(float(solution.witness[0]), 4),
        lp_y_star=round(float(solution.witness[1]), 4),
        decoded_answer=decoded,
    )
    record(benchmark, decoded=decoded)
    assert decoded == instance.solve() == 4


@pytest.mark.parametrize("length", [32, 128, 512])
def test_reduction_sweep(benchmark, length):
    instances = [aug_index_to_tci(random_aug_index(length, seed=s), sigma=2.0) for s in range(5)]

    def run():
        outcomes = []
        for instance in instances:
            lp = tci_to_linear_program(instance)
            decoded = lp_optimum_to_index(lp.solve().witness[0], instance.length)
            outcomes.append(decoded == instance.solve())
        return outcomes

    outcomes = benchmark.pedantic(run, rounds=1, iterations=1)
    emit_row(
        "F1-reduction-sweep",
        bits=length,
        instances=len(instances),
        all_decoded_correctly=all(outcomes),
    )
    record(benchmark, length=length, correct=sum(outcomes))
    assert all(outcomes)
