"""E6 — Comparison with the Chan-Chen streaming baseline ([13] in the paper).

Two comparisons are made, matching the comparison the paper itself draws:

* **Pass-complexity models** — ``O(r^{d-1})`` for Chan-Chen versus
  ``O(d * r)`` for the paper's algorithm: the crossover in ``d`` is printed
  as a table (these are closed-form counts, the point of the comparison is
  the exponential-versus-linear growth in ``d``).
* **Measured 2-d runs** — the executable 2-d prune-and-search baseline and
  the randomised streaming algorithm solve the same envelope-form LPs (from
  the TCI reduction); passes and peak space are recorded for both.
"""

from __future__ import annotations

import pytest

from repro.algorithms import (
    chan_chen_2d_streaming,
    chan_chen_pass_count,
    clarkson_pass_count,
    streaming_clarkson_solve,
)
from repro.lower_bounds import sample_hard_instance, tci_to_linear_program
from repro.lower_bounds.tci import tci_to_envelope_lp

from conftest import emit_row, record, solver_params


def test_pass_complexity_models(benchmark):
    """The closed-form pass counts: exponential vs linear growth in d."""

    def build_table():
        rows = []
        for d in range(2, 9):
            for r in (2, 4):
                rows.append(
                    {
                        "d": d,
                        "r": r,
                        "chan_chen": chan_chen_pass_count(d, r),
                        "this_paper": clarkson_pass_count(d, r),
                    }
                )
        return rows

    rows = benchmark.pedantic(build_table, rounds=1, iterations=1)
    for row in rows:
        emit_row("E6-pass-models", **row)
    crossover = min(r["d"] for r in rows if r["r"] == 4 and r["chan_chen"] > r["this_paper"])
    record(benchmark, crossover_dimension=crossover)
    assert crossover <= 5


@pytest.mark.parametrize("r", [2, 3])
def test_measured_2d_comparison(benchmark, r):
    hard = sample_hard_instance(branching=14, rounds=2, seed=r)  # n = 196 points
    envelope = tci_to_envelope_lp(hard.instance)
    lp = tci_to_linear_program(hard.instance)
    params = solver_params(lp, r=r)

    def run():
        baseline = chan_chen_2d_streaming(envelope, r=r)
        ours = streaming_clarkson_solve(lp, r=r, params=params, rng=11)
        return baseline, ours

    baseline, ours = benchmark.pedantic(run, rounds=1, iterations=1)
    emit_row(
        "E6-measured-2d",
        n_constraints=lp.num_constraints,
        r=r,
        chan_chen_passes=baseline.resources.passes,
        chan_chen_space=baseline.resources.space_peak_items,
        ours_passes=ours.resources.passes,
        ours_space=ours.resources.space_peak_items,
    )
    record(
        benchmark,
        chan_chen_passes=baseline.resources.passes,
        ours_passes=ours.resources.passes,
    )
    # Both algorithms minimise the same envelope; their objectives agree.
    assert baseline.value == pytest.approx(ours.value.objective, rel=1e-4, abs=1e-4)
