"""E2 — Result 1 / Theorems 2 and 4, coordinator model.

Claim: ``O(d * r)`` rounds and ``O~(n^{1/r} + k) * poly(d, log n)`` total
communication.  The benchmark sweeps ``n``, ``k`` and ``r`` and records rounds
and total communication bits; communication should grow sub-linearly in ``n``
and only additively in ``k``.
"""

from __future__ import annotations

import pytest

from repro.algorithms import coordinator_clarkson_solve
from repro.workloads import random_polytope_lp

from conftest import emit_row, record, solver_params


@pytest.mark.parametrize("n", [2000, 8000])
@pytest.mark.parametrize("r", [1, 2, 3])
def test_coordinator_lp_rounds_and_communication(benchmark, n, r):
    instance = random_polytope_lp(n, 2, seed=n * 7 + r)
    params = solver_params(instance.problem, r=r)

    def run():
        return coordinator_clarkson_solve(
            instance.problem, num_sites=8, r=r, params=params, rng=5
        )

    result = benchmark.pedantic(run, rounds=1, iterations=1)
    d = instance.problem.dimension
    input_bits = n * instance.problem.bit_size()
    emit_row(
        "E2-coordinator",
        n=n,
        d=d,
        k=8,
        r=r,
        rounds=result.resources.rounds,
        round_budget=12 * (d + 1) * r,
        comm_kbits=result.resources.total_communication_bits // 1000,
        comm_fraction_of_input=round(
            result.resources.total_communication_bits / input_bits, 3
        ),
    )
    record(
        benchmark,
        n=n,
        r=r,
        rounds=result.resources.rounds,
        communication_bits=result.resources.total_communication_bits,
    )
    assert result.resources.rounds <= 12 * (d + 1) * r


@pytest.mark.parametrize("num_sites", [2, 4, 16])
def test_coordinator_lp_site_sweep(benchmark, num_sites):
    """Communication grows only additively in the number of sites k."""
    instance = random_polytope_lp(6000, 2, seed=num_sites)
    params = solver_params(instance.problem, r=2)

    def run():
        return coordinator_clarkson_solve(
            instance.problem, num_sites=num_sites, r=2, params=params, rng=9
        )

    result = benchmark.pedantic(run, rounds=1, iterations=1)
    emit_row(
        "E2-coordinator-sites",
        n=6000,
        k=num_sites,
        rounds=result.resources.rounds,
        comm_kbits=result.resources.total_communication_bits // 1000,
    )
    record(benchmark, k=num_sites, communication_bits=result.resources.total_communication_bits)
