"""F2 — Figure 2: the EvenInstance / OddInstance recursive embedding.

The benchmark regenerates the structure the figure illustrates: composite
instances with a hidden special sub-instance, the first speaker's curve being
the concatenation of all blocks, and the other curve being the special block
extended by straight lines.  It samples instances from ``D_r`` for several
``(N, r)`` pairs and reports validity, the hidden block, and the embedded
answer, together with the generation cost.
"""

from __future__ import annotations

import pytest

from repro.lower_bounds import build_schedule, sample_hard_instance

from conftest import emit_row, record


@pytest.mark.parametrize("branching,rounds", [(8, 2), (16, 2), (6, 3)])
def test_hard_instance_structure(benchmark, branching, rounds):
    def run():
        return [
            sample_hard_instance(branching=branching, rounds=rounds, seed=s) for s in range(5)
        ]

    instances = benchmark.pedantic(run, rounds=1, iterations=1)
    all_valid = all(h.instance.is_valid() for h in instances)
    all_embedded = all(h.instance.solve() == h.answer for h in instances)
    blocks = sorted({h.special_block for h in instances})
    emit_row(
        "F2-hard-instances",
        branching=branching,
        rounds=rounds,
        n=instances[0].instance.length,
        samples=len(instances),
        all_valid=all_valid,
        answer_in_special_block=all_embedded,
        hidden_blocks_seen=blocks,
    )
    record(benchmark, n=instances[0].instance.length, valid=all_valid)
    assert all_valid and all_embedded


def test_schedule_growth(benchmark):
    """The slope-shift schedule's floors and ranges grow geometrically with the level."""

    def run():
        return build_schedule(branching=16, rounds=4)

    schedule = benchmark.pedantic(run, rounds=1, iterations=1)
    for level in schedule:
        emit_row(
            "F2-schedule",
            level=level.level,
            alice_composite=level.alice_composite,
            bob_floor=level.bob_floor,
            alice_range=level.alice_range,
            bob_range=level.bob_range,
            shift_step=level.shift_step,
        )
    record(benchmark, deepest_bob_floor=schedule[0].bob_floor)
    assert schedule[0].bob_floor > schedule[-1].bob_floor
