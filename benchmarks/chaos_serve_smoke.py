"""Live-serve chaos smoke: SIGKILL a pool worker mid-ticket, correct result.

Boots an in-process :class:`~repro.server.ReproServer` whose sessions run on
the **supervised process transport** (real worker processes), submits a
large coordinator-model ticket, and — as soon as the SSE stream reports the
first solver iteration — SIGKILLs one of the session's live pool workers.
The supervised transport must detect the crash, respawn the worker, replay
its journal, and finish the ticket with a ``repro-result/1`` payload
**bit-identical** to the fault-free in-process ``repro.solve()`` reference.
Any divergence, hang (deadline), or raw pool error exits non-zero.

This is the CI chaos gate for the full service path: HTTP front end →
SolverService retry loop → session → supervised transport recovery.

Run with::

    PYTHONPATH=src python benchmarks/chaos_serve_smoke.py
"""

from __future__ import annotations

import argparse
import os
import signal
import sys
import threading

import repro
from repro.server import ReproServer, ServiceClient
from repro.workloads import random_polytope_lp

CONFIG = dict(
    r=2,
    num_sites=3,
    sample_size=400,
    success_threshold=0.02,
    max_iterations=500,
    seed=0,
    keep_trace=True,
)
TRANSPORT = {"kind": "process", "max_workers": 2, "supervised": True, "reuse_pool": False}


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--n", type=int, default=20000)
    parser.add_argument("--timeout", type=float, default=180.0)
    args = parser.parse_args()

    problem = random_polytope_lp(args.n, 2, seed=31).problem
    reference = repro.solve(problem, model="coordinator", **CONFIG)

    with ReproServer(
        port=0,
        model="coordinator",
        max_workers=1,
        transport=dict(TRANSPORT),
        **CONFIG,
    ) as server:
        client = ServiceClient(server.url)
        session = server._pool.get("coordinator")
        transport = session._transport
        assert transport is not None, "expected a supervised process transport"
        transport._ensure_started()
        victim_pid = transport.worker_pids()[0]

        killed = threading.Event()
        ticket = client.submit(problem)

        def _kill_on_first_iteration() -> None:
            for event in client.events(ticket.id, timeout=args.timeout):
                if event["event"] == "iteration" and not killed.is_set():
                    os.kill(victim_pid, signal.SIGKILL)
                    killed.set()
                    print(f"SIGKILLed worker pid {victim_pid} mid-ticket", flush=True)
                if event["event"] in ("done", "failed", "cancelled"):
                    return

        watcher = threading.Thread(target=_kill_on_first_iteration, daemon=True)
        watcher.start()
        result = ticket.result(timeout=args.timeout)
        watcher.join(timeout=30)

        failures: list[str] = []
        if not killed.is_set():
            failures.append(
                "the worker was never killed (no iteration event observed)"
            )
        if result.value != reference.value:
            failures.append(f"value diverged: {result.value} != {reference.value}")
        if result.basis_indices != reference.basis_indices:
            failures.append("certified basis diverged")
        if result.iterations != reference.iterations:
            failures.append(
                f"iteration story diverged: {result.iterations} != "
                f"{reference.iterations}"
            )
        if (
            result.resources.total_communication_bits
            != reference.resources.total_communication_bits
        ):
            failures.append("communication ledger diverged")
        health = client.healthz()
        model_health = health["readiness"]["models"]["coordinator"]
        restarts = model_health["transport"].get("total_restarts", 0)
        if killed.is_set() and restarts < 1 and not model_health["transport"].get(
            "degraded"
        ):
            failures.append(
                "the kill left no recovery trace (no restart, no degradation)"
            )

        print(
            f"chaos-serve-smoke: killed={killed.is_set()} restarts={restarts} "
            f"value={result.value!r} iterations={result.iterations} "
            f"bits={result.resources.total_communication_bits}",
            flush=True,
        )
        if failures:
            for failure in failures:
                print(f"FAIL: {failure}", file=sys.stderr, flush=True)
            return 1
        print("chaos-serve-smoke: PASS (bit-identical after worker SIGKILL)")
        return 0


if __name__ == "__main__":
    sys.exit(main())
