"""E3 — Result 1 / Theorems 3 and 4, MPC model.

Claim: ``O(d / delta^2)`` rounds with ``O~(n^delta) * poly(d, log n)`` load
per machine.  The benchmark sweeps ``delta`` and ``n`` and records rounds and
the maximum per-machine load; the load should be a small fraction of the
input and shrink (relative to ``n``) as ``delta`` decreases, at the price of
more rounds.
"""

from __future__ import annotations

import pytest

from repro.algorithms import mpc_clarkson_solve
from repro.workloads import random_polytope_lp

from conftest import emit_row, record, solver_params


@pytest.mark.parametrize("n", [2000, 8000])
@pytest.mark.parametrize("delta", [0.5, 1.0 / 3.0])
def test_mpc_lp_rounds_and_load(benchmark, n, delta):
    instance = random_polytope_lp(n, 2, seed=int(n * delta))
    params = solver_params(instance.problem, r=max(1, round(1.0 / delta)))

    def run():
        return mpc_clarkson_solve(
            instance.problem, delta=delta, num_machines=16, params=params, rng=3
        )

    result = benchmark.pedantic(run, rounds=1, iterations=1)
    input_bits = n * instance.problem.bit_size()
    emit_row(
        "E3-mpc",
        n=n,
        delta=round(delta, 3),
        machines=result.resources.machine_count,
        rounds=result.resources.rounds,
        load_kbits=result.resources.max_machine_load_bits // 1000,
        load_fraction_of_input=round(
            result.resources.max_machine_load_bits / input_bits, 4
        ),
    )
    record(
        benchmark,
        n=n,
        delta=delta,
        rounds=result.resources.rounds,
        load_bits=result.resources.max_machine_load_bits,
    )
    # The per-machine load never approaches the full input.
    assert result.resources.max_machine_load_bits < input_bits


def test_mpc_round_load_tradeoff(benchmark):
    """Smaller delta => more rounds, smaller broadcast fan-out."""
    instance = random_polytope_lp(6000, 2, seed=99)

    def run():
        shallow = mpc_clarkson_solve(
            instance.problem, delta=0.5, num_machines=16,
            params=solver_params(instance.problem, r=2), rng=4,
        )
        deep = mpc_clarkson_solve(
            instance.problem, delta=0.25, num_machines=16,
            params=solver_params(instance.problem, r=4), rng=4,
        )
        return shallow, deep

    shallow, deep = benchmark.pedantic(run, rounds=1, iterations=1)
    emit_row(
        "E3-mpc-tradeoff",
        delta_05_rounds=shallow.resources.rounds,
        delta_05_load_kbits=shallow.resources.max_machine_load_bits // 1000,
        delta_025_rounds=deep.resources.rounds,
        delta_025_load_kbits=deep.resources.max_machine_load_bits // 1000,
    )
    record(benchmark, shallow_rounds=shallow.resources.rounds, deep_rounds=deep.resources.rounds)
    assert deep.resources.rounds >= shallow.resources.rounds
