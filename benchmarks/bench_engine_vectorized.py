"""V1 — vectorised violation oracles on the streaming hot path.

The streaming driver's per-iteration cost is dominated by evaluating the
implicit weights of Section 3.2: every constraint's weight is
``boost ** a_i`` where ``a_i`` counts the stored bases it violates.  The
pre-engine implementation paid ``O(n * bases)`` interpreted ``violates``
calls per pass; the engine substrate asks the problem for the whole
exponent vector in one ``violation_count_matrix`` NumPy sweep.

This benchmark measures exactly that evaluation — all constraints against
all stored bases — at ``n = 10^5`` and asserts the vectorised path is at
least 5x faster than the scalar loop (in practice it is orders of
magnitude faster).  A second benchmark shows the end-to-end effect on a
full streaming solve.
"""

from __future__ import annotations

import time

import numpy as np
import pytest

from repro.algorithms import streaming_clarkson_solve
from repro.core.clarkson import practical_parameters
from repro.workloads import random_polytope_lp

from conftest import emit_row, record

REQUIRED_SPEEDUP = 5.0


def _scalar_exponents(problem, witnesses, indices):
    """The pre-engine scalar path: one interpreted call per (constraint, basis)."""
    return np.asarray(
        [
            sum(1 for witness in witnesses if problem.violates(witness, int(i)))
            for i in indices
        ],
        dtype=np.int64,
    )


def _stored_bases(problem, count, rng):
    """Witnesses resembling the stored bases of successful iterations."""
    witnesses = []
    for _ in range(count):
        subset = np.sort(rng.choice(problem.num_constraints, size=60, replace=False))
        witnesses.append(problem.solve_subset(subset).witness)
    return witnesses


@pytest.mark.parametrize("n", [100_000])
def test_streaming_implicit_weight_speedup(benchmark, n):
    instance = random_polytope_lp(n, 2, seed=97)
    problem = instance.problem
    witnesses = _stored_bases(problem, count=6, rng=np.random.default_rng(5))
    indices = problem.all_indices()

    vectorized = benchmark.pedantic(
        lambda: problem.violation_count_matrix(witnesses, indices),
        rounds=3,
        iterations=1,
    )

    start = time.perf_counter()
    scalar = _scalar_exponents(problem, witnesses, indices)
    scalar_seconds = time.perf_counter() - start

    start = time.perf_counter()
    problem.violation_count_matrix(witnesses, indices)
    vector_seconds = time.perf_counter() - start

    assert np.array_equal(vectorized, scalar)
    speedup = scalar_seconds / max(vector_seconds, 1e-9)
    emit_row(
        "V1-implicit-weights",
        n=n,
        bases=len(witnesses),
        scalar_seconds=round(scalar_seconds, 4),
        vector_seconds=round(vector_seconds, 6),
        speedup=round(speedup, 1),
    )
    record(benchmark, n=n, scalar_seconds=scalar_seconds, speedup=speedup)
    assert speedup >= REQUIRED_SPEEDUP


def test_streaming_solve_end_to_end(benchmark):
    """Full streaming solve at n = 10^5 (the scale the scalar path choked on)."""
    n = 100_000
    instance = random_polytope_lp(n, 2, seed=98)
    params = practical_parameters(instance.problem, r=2, keep_trace=False)

    result = benchmark.pedantic(
        lambda: streaming_clarkson_solve(instance.problem, r=2, params=params, rng=17),
        rounds=1,
        iterations=1,
    )
    emit_row(
        "V1-streaming-end-to-end",
        n=n,
        passes=result.resources.passes,
        space_items=result.resources.space_peak_items,
        objective=round(result.value.objective, 6),
    )
    record(benchmark, n=n, passes=result.resources.passes)
