"""E8 — Result 2 / Theorem 7, Corollary 8: communication of TCI on the hard distribution.

The lower bound says any ``r``-round protocol needs ``Omega(n^{1/r} / r^2)``
bits on instances of ``D_r``; the matching upper bound is the interactive
probing protocol with ``O~(r * n^{1/r})`` bits.  The benchmark measures the
protocol's communication on sampled hard instances across ``n`` and ``r`` and
prints it next to the lower-bound curve, so the gap (a poly(r) * log n
factor) is visible and the ``n^{1/r}`` shape can be checked.
"""

from __future__ import annotations

import pytest

from repro.core.accounting import DEFAULT_BITS_PER_COEFFICIENT
from repro.lower_bounds import (
    interactive_tci_protocol,
    one_round_tci_protocol,
    sample_hard_instance,
)

from conftest import emit_row, record


@pytest.mark.parametrize("branching,rounds", [(16, 1), (16, 2), (8, 3), (12, 3)])
def test_interactive_protocol_on_hard_distribution(benchmark, branching, rounds):
    hard = sample_hard_instance(branching=branching, rounds=rounds, seed=1)
    n = hard.instance.length

    def run():
        return interactive_tci_protocol(hard.instance, rounds=rounds)

    result = benchmark.pedantic(run, rounds=1, iterations=1)
    lower_bound_bits = (n ** (1.0 / rounds)) / (rounds ** 2)
    emit_row(
        "E8-tci-protocol",
        n=n,
        r=rounds,
        measured_bits=result.total_bits,
        measured_values=result.total_bits // DEFAULT_BITS_PER_COEFFICIENT,
        lower_bound_values=round(lower_bound_bits, 1),
        answer_correct=result.answer == hard.answer,
    )
    record(benchmark, n=n, r=rounds, bits=result.total_bits)
    assert result.answer == hard.answer
    # The upper bound respects the lower bound (it communicates more values
    # than the Omega(n^{1/r} / r^2) requirement).
    assert result.total_bits / DEFAULT_BITS_PER_COEFFICIENT >= lower_bound_bits / 10


def test_one_round_protocol_is_linear(benchmark):
    """Lemma 5.6: one-round protocols pay Theta(n); the trivial protocol matches."""
    hard = sample_hard_instance(branching=20, rounds=2, seed=2)  # n = 400
    n = hard.instance.length

    def run():
        return one_round_tci_protocol(hard.instance)

    result = benchmark.pedantic(run, rounds=1, iterations=1)
    emit_row(
        "E8-one-round",
        n=n,
        measured_bits=result.total_bits,
        linear_in_n=result.total_bits == n * DEFAULT_BITS_PER_COEFFICIENT,
    )
    record(benchmark, bits=result.total_bits)
    assert result.answer == hard.answer
    assert result.total_bits == n * DEFAULT_BITS_PER_COEFFICIENT


def test_round_communication_tradeoff_shape(benchmark):
    """For fixed n, more rounds means less communication (the n^{1/r} decay)."""
    hard = sample_hard_instance(branching=9, rounds=3, seed=3)  # n = 729

    def run():
        return [
            interactive_tci_protocol(hard.instance, rounds=r).total_bits for r in (1, 2, 3, 4)
        ]

    bits = benchmark.pedantic(run, rounds=1, iterations=1)
    emit_row(
        "E8-tradeoff",
        n=hard.instance.length,
        bits_r1=bits[0],
        bits_r2=bits[1],
        bits_r3=bits[2],
        bits_r4=bits[3],
    )
    record(benchmark, bits_by_round=bits)
    assert bits[0] > bits[1] > bits[2] >= bits[3] * 0.5
