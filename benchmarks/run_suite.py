"""The canonical perf suite: one scenario grid, one machine-readable BENCH.json.

This is the arbiter for every perf-focused PR: a fixed grid of
``model x problem family x size tier`` scenarios, each driven through the
``repro.solve()`` front door with the practical profile and a pinned seed, so
two runs of the same tier on the same machine measure the same work.  The
output is ``BENCH.json`` (schema ``repro-bench/3``, documented in
``docs/performance.md``): per-scenario wall time, iteration count, violation
oracle calls, basis-cache hit rate, modelled peak bytes, plus the
**communication currencies** of the fabric — rounds/passes, total measured
bits, the largest single message, and the per-node load peak — and the
geometric-mean wall time that headline comparisons quote.

With ``--baseline`` the suite gates regressions in *both* families of
currencies: wall time (``--max-regression``, default 2x) and communication
(``--max-bits-regression``, default 2x total bits, and ``--max-extra-rounds``,
default +1 round), so a perf PR cannot buy wall-clock speed with silent
communication blow-ups.

Schema ``repro-bench/3`` additionally records the active kernel backend per
scenario; ``--backends numpy fused`` runs the grid once per backend and emits
a ``backend_speedups`` block (geomean wall-time ratio of every backend over
the first one listed).  The ``xlarge`` tier (n = 10^7, sequential model only
by default) is the kernel layer's headline tier.

Schema ``repro-bench/4`` adds the ``transport_bench`` block
(``--transport-bench``): for each worker count, the process transport's
*dispatch* cost — shipping the problem to every worker, installing node
states, and running task rounds — is timed with shared memory off (the
pickle wire) and on (zero-copy segments + the pickle-free frame codec),
alongside each worker's peak RSS (``VmHWM``) and private footprint (USS,
the honest zero-copy metric: shared pages don't count).
``--min-transport-speedup`` gates the shm-over-pickle dispatch ratio in CI.

Schema ``repro-bench/5`` adds ``wire="tcp"`` cells to the same block: the
identical dispatch workload run through the cluster subsystem's
:class:`~repro.cluster.transport.TcpTransport` (loopback node agents, real
sockets, length-prefixed wirecodec frames), with per-agent VmHWM/USS, and a
``tcp_overhead`` map (tcp wall / pickle-wire wall per worker count) that
quantifies what crossing a real socket costs relative to a local pipe.

Usage::

    PYTHONPATH=src python benchmarks/run_suite.py --tier small -o BENCH.json
    PYTHONPATH=src python benchmarks/run_suite.py --tier medium --repeats 5
    # kernel-backend comparison on the large-input tier
    PYTHONPATH=src python benchmarks/run_suite.py --tier xlarge \
        --backends numpy fused --repeats 1
    # CI regression gate: wall time and communication vs the baseline
    PYTHONPATH=src python benchmarks/run_suite.py --tier small \
        --baseline benchmarks/bench_baseline_small.json --max-regression 2.0
    # zero-copy data plane: dispatch latency + per-worker RSS, shm vs pickle
    PYTHONPATH=src python benchmarks/run_suite.py --transport-bench \
        --transport-only --transport-workers 2 8 -o BENCH-transport.json
    # print the checked-in snapshot geomeans per tier/backend
    PYTHONPATH=src python benchmarks/run_suite.py --history
"""

from __future__ import annotations

import argparse
import json
import math
import platform
import statistics
import sys
import time
import zlib
from dataclasses import dataclass
from typing import Callable

import numpy as np

from repro import SolverConfig, TransportConfig, solve
from repro import session as open_session
from repro.core.lptype import LPTypeProblem
from repro.problems.meb import MinimumEnclosingBall
from repro.problems.qp import ConvexQuadraticProgram
from repro.workloads import (
    make_separable_classification,
    random_polytope_lp,
    svm_problem,
    uniform_ball_points,
)

SCHEMA = "repro-bench/5"

#: Constraint counts per tier (shared by all four problem families).
TIERS = {
    "small": 2_000,
    "medium": 100_000,
    "large": 250_000,
    "xlarge": 10_000_000,
}

#: Ambient dimension of every scenario (the paper's regime is n >> d).  The
#: xlarge tier uses a wider d so that the constraint sweeps are matvec-bound
#: (the regime the fused kernels target) rather than pure memory traffic.
DIMENSION = 3
TIER_DIMENSIONS = {"small": 3, "medium": 3, "large": 3, "xlarge": 8}

MODELS = ("sequential", "streaming", "coordinator", "mpc")
PROBLEMS = ("lp", "meb", "svm", "qp")

#: Default model list per tier.  The xlarge tier times the kernel layer, not
#: the fabric simulators, so it runs the sequential model only (the other
#: models can still be requested explicitly with ``--models``).
TIER_MODELS = {"xlarge": ("sequential",)}

#: Clarkson ``r`` per tier (default 2).  At n = 10^7 the r = 2 eps-net sample
#: is ~10^5.5 rows, so the in-sample working-set solves — identical across
#: kernel backends — dominate wall time; r = 4 shrinks the sample to ~n^(1/4)
#: (the paper's memory-lean regime for very large n) and puts the tier in the
#: full-array-sweep regime the kernel layer targets.
TIER_R = {"xlarge": 4}

#: Model-specific overrides applied on top of the practical profile.
MODEL_OVERRIDES = {
    "sequential": {},
    "streaming": {},
    "coordinator": {"num_sites": 4},
    "mpc": {"delta": 0.5},
}


def _random_qp(n: int, d: int, seed: int) -> ConvexQuadraticProgram:
    """A strictly convex QP with ``n`` constraints, feasible by construction."""
    rng = np.random.default_rng(seed)
    q_matrix = np.diag(np.linspace(1.0, 2.0, d))
    q_vector = rng.normal(size=d)
    normals = rng.normal(size=(n, d))
    normals /= np.linalg.norm(normals, axis=1, keepdims=True)
    anchor = rng.uniform(-1.0, 1.0, size=d)
    slack = rng.uniform(0.1, 1.0, size=n)
    h_vector = normals @ anchor - slack
    return ConvexQuadraticProgram(q_matrix, q_vector, normals, h_vector)


def _build_problem(family: str, n: int, seed: int, d: int = DIMENSION) -> LPTypeProblem:
    if family == "lp":
        return random_polytope_lp(n, d, seed=seed).problem
    if family == "meb":
        return MinimumEnclosingBall(uniform_ball_points(n, d, seed=seed))
    if family == "svm":
        return svm_problem(make_separable_classification(n, d, seed=seed))
    if family == "qp":
        return _random_qp(n, d, seed)
    raise ValueError(f"unknown problem family {family!r}")


def _scenario_seed(family: str, model: str, n: int) -> int:
    """A stable per-scenario seed (instance and solver share the grid key).

    ``zlib.crc32`` rather than ``hash()``: the latter is salted per process,
    which would re-seed every run of the suite.
    """
    return zlib.crc32(f"{family}:{model}:{n}".encode()) % (2**31)


def _peak_bytes(result, problem: LPTypeProblem) -> int:
    """Modelled peak footprint of the run in bytes (per-model currency).

    streaming: peak stored bits; sequential: peak materialised constraints
    at ``bit_size`` bits each; mpc: peak per-machine load; coordinator:
    total communication.  See docs/performance.md.
    """
    res = result.resources
    if res.space_peak_bits:
        return res.space_peak_bits // 8
    if res.space_peak_items:
        return res.space_peak_items * problem.bit_size() // 8
    if res.max_machine_load_bits:
        return res.max_machine_load_bits // 8
    return res.total_communication_bits // 8


def _objective(result) -> float | None:
    value = result.value
    scalar = getattr(value, "objective", None)
    if scalar is None:
        scalar = getattr(value, "radius", None)
    if scalar is None:
        scalar = getattr(value, "squared_norm", None)
    try:
        return round(float(scalar), 9) if scalar is not None else None
    except (TypeError, ValueError):
        return None


@dataclass
class Scenario:
    family: str
    model: str
    tier: str
    n: int
    d: int = DIMENSION
    backend: str | None = None

    @property
    def scenario_id(self) -> str:
        base = f"{self.family}:{self.model}:{self.tier}"
        # Backend-qualified ids only when a backend was explicitly requested,
        # so default runs keep matching schema-v2 baselines.
        return base if self.backend is None else f"{base}:{self.backend}"

    def run(self, repeats: int) -> dict:
        seed = _scenario_seed(self.family, self.model, self.n)
        problem = _build_problem(self.family, self.n, seed, d=self.d)
        config = SolverConfig.practical(
            problem,
            r=TIER_R.get(self.tier, 2),
            keep_trace=False,
            seed=seed,
            kernel_backend=self.backend,
        )
        overrides = MODEL_OVERRIDES[self.model]

        walls: list[float] = []
        result = None
        for _ in range(repeats):
            start = time.perf_counter()
            result = solve(problem, model=self.model, config=config, **overrides)
            walls.append(time.perf_counter() - start)

        res = result.resources
        hits = getattr(res, "basis_cache_hits", 0)
        misses = getattr(res, "basis_cache_misses", 0)
        total = hits + misses
        communication = result.communication
        return {
            "id": self.scenario_id,
            "problem": self.family,
            "model": self.model,
            "tier": self.tier,
            "n": self.n,
            "d": self.d,
            "kernel_backend": result.metadata.get("kernel_backend"),
            "seed": seed,
            "wall_time_s": round(statistics.median(walls), 6),
            "wall_times_s": [round(w, 6) for w in walls],
            "iterations": result.iterations,
            "oracle_calls": int(getattr(res, "oracle_calls", 0)),
            "cache_hits": int(hits),
            "cache_misses": int(misses),
            "cache_hit_rate": round(hits / total, 4) if total else None,
            "peak_bytes": int(_peak_bytes(result, problem)),
            "objective": _objective(result),
            # Communication currencies (schema repro-bench/2): rounds is the
            # model's synchronisation count (stream passes for streaming).
            "rounds": int(communication.rounds),
            "total_comm_bits": int(communication.total_bits),
            "max_message_bits": int(communication.max_message_bits),
            "max_load_bits": int(communication.max_load_bits),
        }


#: Session-amortisation scenario: instances per batch and their size.
SESSION_BATCH = 16
SESSION_N = 2_000
#: How many one-shot (k=1) sessions are timed for the per-solve baseline.
SESSION_ONE_SHOT_REPEATS = 3


def session_amortization(
    batch: int = SESSION_BATCH, n: int = SESSION_N
) -> dict:
    """Per-solve latency: one-shot sessions (k=1) vs one session reused k times.

    Both sides run the streaming model on a dedicated one-worker
    ``ProcessPoolTransport`` (``reuse_pool=False``, so nothing is shared
    between one-shot calls — the pre-session behaviour).  The k=1 side pays
    worker spin-up on every solve; the k=``batch`` side pays it once at
    session creation, which is the amortisation the session API exists for.
    Emitted as the ``session_amortization`` block of ``BENCH.json``.
    """
    problems = [
        random_polytope_lp(n, DIMENSION, seed=900 + i).problem for i in range(batch)
    ]
    transport = TransportConfig(kind="process", reuse_pool=False, max_workers=1)
    config = SolverConfig.practical(problems[0], r=2, keep_trace=False, seed=0)

    def _solve_in(sess, problem):
        return sess.solve(problem, keep_trace=False)

    one_shot_times: list[float] = []
    for i in range(min(SESSION_ONE_SHOT_REPEATS, batch)):
        start = time.perf_counter()
        with open_session(
            model="streaming", config=config, transport=transport
        ) as sess:
            _solve_in(sess, problems[i])
        one_shot_times.append(time.perf_counter() - start)

    start = time.perf_counter()
    with open_session(model="streaming", config=config, transport=transport) as sess:
        for problem in problems:
            _solve_in(sess, problem)
    batch_wall = time.perf_counter() - start

    per_solve_k1 = statistics.median(one_shot_times)
    per_solve_k = batch_wall / batch
    return {
        "model": "streaming",
        "transport": "process (reuse_pool=False, max_workers=1)",
        "n": n,
        "batch": batch,
        "per_solve_s_k1": round(per_solve_k1, 6),
        "per_solve_s_k16": round(per_solve_k, 6),
        "batch_wall_s": round(batch_wall, 6),
        "amortization_speedup": round(per_solve_k1 / per_solve_k, 3)
        if per_solve_k > 0
        else None,
    }


# --------------------------------------------------------------------- #
# Transport data plane: dispatch latency + per-worker memory, shm vs pickle
# --------------------------------------------------------------------- #

#: Transport-bench defaults: the xlarge problem shape (n = 10^7, d = 8) and
#: the worker counts whose per-worker footprint the RSS-flatness claim spans.
TRANSPORT_WORKERS = (2, 8)
TRANSPORT_ROUNDS = 4
TRANSPORT_REPEATS = 3


# The probe tasks live in repro.workloads so that standalone node agents
# (python -m repro node) can unpickle them by reference; spawn workers could
# re-import this script, but a TCP agent only shares the installed package.
from repro.workloads.transport_probe import (  # noqa: E402
    transport_probe_task as _transport_probe_task,
    transport_ready_task as _transport_ready_task,
)


def _proc_kb(pid: int, filename: str, fields: tuple) -> int | None:
    """Sum of ``fields`` (kB) from ``/proc/<pid>/<filename>``; None off-Linux."""
    try:
        total = 0
        with open(f"/proc/{pid}/{filename}") as handle:
            for line in handle:
                if line.split(":", 1)[0] in fields:
                    total += int(line.split()[1])
        return total
    except (OSError, ValueError, IndexError):
        return None


def _worker_memory_kb(pids) -> dict:
    """Per-worker/agent VmHWM (peak RSS) and USS (private pages) in kB.

    USS — ``Private_Clean + Private_Dirty`` from ``smaps_rollup`` — is the
    zero-copy headline: pages mapped from a shared segment are *shared*, so
    a worker reading the whole problem through shm keeps a near-empty
    private footprint while the pickle wire charges it the full copy.
    Takes plain pids so the pool workers and the TCP transport's node agents
    are probed identically.
    """
    hwm, uss = [], []
    for pid in pids:
        hwm.append(_proc_kb(pid, "status", ("VmHWM",)))
        uss.append(_proc_kb(pid, "smaps_rollup", ("Private_Clean", "Private_Dirty")))
    def _stats(values):
        known = [v for v in values if v is not None]
        if not known:
            return {"per_worker": values, "mean": None, "max": None}
        return {
            "per_worker": values,
            "mean": int(statistics.mean(known)),
            "max": max(known),
        }
    return {"vmhwm_kb": _stats(hwm), "uss_kb": _stats(uss)}


def _transport_cell(problem, workers: int, wire: str, rounds: int, repeats: int) -> dict:
    from repro.fabric.transport import ProcessPoolTransport, SharedRef, new_session

    shared_memory = wire == "shm"
    if wire == "tcp":
        from repro.cluster.transport import TcpTransport

        transport = TcpTransport(max_workers=workers)
    else:
        transport = ProcessPoolTransport(max_workers=workers, shared_memory=shared_memory)
    transport.warm_up()
    # ``warm_up`` starts the processes but returns before they finish booting
    # (interpreter + imports, ~1s under ``spawn``).  Run one throwaway round
    # so every timed repeat measures dispatch, not worker start-up.
    ready = new_session()
    for node in range(workers):
        transport.init_node(ready, node, {"node": node})
    transport.run_nodes(
        ready, list(range(workers)), _transport_ready_task, [()] * workers
    )
    transport.release(ready)
    n = problem.num_constraints
    bounds = np.linspace(0, n, workers + 1).astype(int)
    reference = np.zeros(problem.dimension)
    walls: list[float] = []
    memory: dict = {}
    try:
        for _ in range(max(1, repeats)):
            session = new_session()
            start = time.perf_counter()
            transport.init_shared(session, "problem", problem)
            for node in range(workers):
                transport.init_node(
                    session, node, {"problem": SharedRef("problem"), "x": reference}
                )
            for round_index in range(rounds):
                transport.run_nodes(
                    session,
                    list(range(workers)),
                    _transport_probe_task,
                    [
                        (int(bounds[i]), int(bounds[i + 1]), round_index)
                        for i in range(workers)
                    ],
                )
            walls.append(time.perf_counter() - start)
            # Memory observed while the session is still live (states held).
            if wire == "tcp":
                pids = transport.agent_pids()
            else:
                pids = [process.pid for process, _ in transport._workers]
            memory = _worker_memory_kb(pids)
            transport.release(session)
    finally:
        transport.close()
    return {
        "workers": workers,
        "wire": wire,
        "shared_memory": shared_memory,
        "active": bool(getattr(transport, "shared_memory", False)) if shared_memory else False,
        "rounds": rounds,
        "repeats": repeats,
        "dispatch_wall_s": round(statistics.median(walls), 6),
        "dispatch_walls_s": [round(w, 6) for w in walls],
        **memory,
    }


def transport_bench(
    n: int | None = None,
    workers_list: tuple | list = TRANSPORT_WORKERS,
    rounds: int = TRANSPORT_ROUNDS,
    repeats: int = TRANSPORT_REPEATS,
) -> dict:
    """The ``transport_bench`` block: dispatch cost per wire on the LP family.

    One xlarge-shaped LP (``n`` overridable for CI smoke budgets) is shipped
    and dispatched through a fresh transport per cell — ``workers x {pickle
    wire, shared memory, tcp}`` (the tcp cells run the identical workload
    through :class:`~repro.cluster.transport.TcpTransport` with loopback
    node agents) — and each cell reports the median wall of ``init_shared +
    per-node init + rounds x run_nodes`` plus per-worker VmHWM/USS read
    before release.  ``speedups`` maps each worker count to pickle-wall /
    shm-wall; ``tcp_overhead`` maps it to tcp-wall / pickle-wall.
    """
    size = TIERS["xlarge"] if n is None else int(n)
    d = TIER_DIMENSIONS["xlarge"]
    seed = _scenario_seed("lp", "transport", size)
    problem = _build_problem("lp", size, seed, d=d)
    pack = problem.constraint_pack()  # built once, outside every timed region
    cells = []
    for workers in workers_list:
        for wire in ("pickle", "shm", "tcp"):
            cell = _transport_cell(problem, int(workers), wire, rounds, repeats)
            cells.append(cell)
            uss = cell.get("uss_kb", {}).get("max")
            print(
                f"transport n={size} workers={workers} {wire}: "
                f"{cell['dispatch_wall_s']:.4f}s dispatch, "
                f"max worker USS {uss} kB"
            )
    by_key = {(c["workers"], c["wire"]): c for c in cells}
    speedups = {}
    tcp_overhead = {}
    for workers in workers_list:
        pickle_cell = by_key[(int(workers), "pickle")]
        shm_cell = by_key[(int(workers), "shm")]
        tcp_cell = by_key[(int(workers), "tcp")]
        if shm_cell["dispatch_wall_s"] > 0:
            speedups[str(workers)] = round(
                pickle_cell["dispatch_wall_s"] / shm_cell["dispatch_wall_s"], 3
            )
        if pickle_cell["dispatch_wall_s"] > 0:
            tcp_overhead[str(workers)] = round(
                tcp_cell["dispatch_wall_s"] / pickle_cell["dispatch_wall_s"], 3
            )
    return {
        "family": "lp",
        "n": size,
        "d": d,
        "array_bytes": int(pack.rows.nbytes + pack.rhs.nbytes),
        "rounds": rounds,
        "repeats": repeats,
        "cells": cells,
        "speedups": speedups,
        "min_speedup": min(speedups.values()) if speedups else None,
        "tcp_overhead": tcp_overhead,
    }


def build_grid(
    tier: str,
    models: list[str],
    problems: list[str],
    backends: list[str | None] | None = None,
    n: int | None = None,
) -> list[Scenario]:
    size = TIERS[tier] if n is None else int(n)
    d = TIER_DIMENSIONS.get(tier, DIMENSION)
    return [
        Scenario(family=family, model=model, tier=tier, n=size, d=d, backend=backend)
        for backend in (backends or [None])
        for family in problems
        for model in models
    ]


def geomean(values: list[float]) -> float:
    positive = [v for v in values if v > 0]
    if not positive:
        return 0.0
    return math.exp(sum(math.log(v) for v in positive) / len(positive))


def backend_speedups(scenarios: list[dict], backends: list[str]) -> dict:
    """Geomean wall-time speedup of each backend over the first one listed.

    Scenarios are matched cell-by-cell (family, model, tier); the headline
    number of the kernel layer is ``backend_speedups["fused"]`` of an xlarge
    ``--backends numpy fused`` run.
    """
    by_backend: dict[str, dict[tuple, float]] = {}
    for row in scenarios:
        key = (row["problem"], row["model"], row["tier"])
        by_backend.setdefault(row["kernel_backend"], {})[key] = row["wall_time_s"]
    reference = backends[0]
    out = {}
    for backend in backends[1:]:
        ratios = [
            base_wall / wall
            for key, base_wall in by_backend.get(reference, {}).items()
            for wall in [by_backend.get(backend, {}).get(key)]
            if wall and base_wall > 0
        ]
        out[backend] = round(geomean(ratios), 3) if ratios else None
    return {"reference": reference, "speedups": out}


def print_history(bench_dir: str | None = None) -> int:
    """Print the checked-in snapshot geomeans, grouped per tier and backend."""
    import pathlib

    root = pathlib.Path(bench_dir) if bench_dir else pathlib.Path(__file__).parent
    rows = []
    for path in sorted(root.glob("*.json")):
        try:
            with open(path) as handle:
                report = json.load(handle)
        except (OSError, json.JSONDecodeError):
            continue
        if not str(report.get("schema", "")).startswith("repro-bench/"):
            continue
        by_backend: dict[str, list[float]] = {}
        for scenario in report.get("scenarios", []):
            backend = scenario.get("kernel_backend") or "default"
            by_backend.setdefault(backend, []).append(scenario["wall_time_s"])
        for backend, walls in sorted(by_backend.items()):
            rows.append(
                (
                    path.name,
                    report.get("schema", "?"),
                    report.get("tier", "?"),
                    backend,
                    len(walls),
                    geomean(walls),
                )
            )
        speedups = report.get("backend_speedups")
        if speedups:
            pairs = ", ".join(
                f"{backend}={ratio}x" for backend, ratio in speedups["speedups"].items()
            )
            rows.append(
                (path.name, "", "", f"speedup vs {speedups['reference']}", "", pairs)
            )
        transport = report.get("transport_bench")
        if transport:
            for cell in transport.get("cells", []):
                # repro-bench/5 cells name their wire; older snapshots only
                # carry the shared_memory flag.
                wire = cell.get("wire") or (
                    "shm" if cell.get("shared_memory") else "pickle"
                )
                uss = (cell.get("uss_kb") or {}).get("max")
                rows.append(
                    (
                        path.name,
                        "",
                        f"n={transport['n']}",
                        f"transport {wire} w={cell['workers']}",
                        f"{uss or '?'}kB",
                        f"{cell['dispatch_wall_s']:.4f}s",
                    )
                )
            pairs = ", ".join(
                f"w={workers}: {ratio}x"
                for workers, ratio in transport.get("speedups", {}).items()
            )
            if pairs:
                rows.append((path.name, "", "", "transport shm speedup", "", pairs))
            tcp_pairs = ", ".join(
                f"w={workers}: {ratio}x"
                for workers, ratio in transport.get("tcp_overhead", {}).items()
            )
            if tcp_pairs:
                rows.append(
                    (path.name, "", "", "transport tcp overhead", "", tcp_pairs)
                )
    if not rows:
        print(f"no repro-bench snapshots found under {root}")
        return 1
    print(f"{'snapshot':40} {'schema':14} {'tier':8} {'backend':22} {'cells':>5} geomean")
    for name, schema, tier, backend, cells, value in rows:
        value_text = f"{value:.4f}s" if isinstance(value, float) else str(value)
        print(f"{name:40} {schema:14} {tier:8} {backend:22} {str(cells):>5} {value_text}")
    return 0


def _communication_failures(
    scenario: dict,
    base: dict,
    max_bits_regression: float,
    max_extra_rounds: int,
) -> list[str]:
    """Communication-currency gate for one scenario (schema v2 baselines).

    Fails when the measured total bits exceed ``max_bits_regression`` times
    the baseline, or when the run takes more than ``max_extra_rounds``
    additional rounds/passes.  Baselines without communication columns
    (schema v1) skip the gate for that scenario.
    """
    if "total_comm_bits" not in base or "rounds" not in base:
        return []
    problems = []
    base_bits = int(base["total_comm_bits"])
    bits = int(scenario.get("total_comm_bits", 0))
    if base_bits > 0 and bits > max_bits_regression * base_bits:
        problems.append(
            f"total_comm_bits {bits} > {max_bits_regression:.1f}x baseline {base_bits}"
        )
    rounds = int(scenario.get("rounds", 0))
    base_rounds = int(base["rounds"])
    if rounds > base_rounds + max_extra_rounds:
        problems.append(
            f"rounds {rounds} > baseline {base_rounds} + {max_extra_rounds}"
        )
    return problems


def compare_to_baseline(
    report: dict,
    baseline_path: str,
    max_regression: float,
    noise_floor_s: float = 0.015,
    max_bits_regression: float = 2.0,
    max_extra_rounds: int = 1,
) -> int:
    """Per-scenario regression gate; returns a process exit code.

    Wall time: the gated ratio is computed against ``max(baseline,
    noise_floor_s)``: single-digit-millisecond scenarios (whose wall times
    are dominated by scheduler noise on shared CI runners) only fail once
    they regress past the absolute floor times ``max_regression``, not on
    jitter.  Both the raw vs-baseline ratio and the gated vs-floor ratio are
    reported.

    Communication: measured bits and rounds are deterministic (no noise
    floor needed) — more than ``max_bits_regression`` times the baseline
    bits, or more than ``max_extra_rounds`` extra rounds, fails the gate.
    """
    with open(baseline_path) as handle:
        baseline = json.load(handle)
    base_by_id = {s["id"]: s for s in baseline.get("scenarios", [])}
    failures = []
    missing = []
    for scenario in report["scenarios"]:
        base = base_by_id.get(scenario["id"])
        if base is None or base["wall_time_s"] <= 0:
            # A silently skipped scenario would make the gate pass vacuously;
            # an unmatched id means the baseline is stale — fail loudly.
            print(f"[missing-baseline] {scenario['id']}: no usable baseline entry")
            missing.append(scenario["id"])
            continue
        raw_ratio = scenario["wall_time_s"] / base["wall_time_s"]
        gated_ratio = scenario["wall_time_s"] / max(base["wall_time_s"], noise_floor_s)
        comm_problems = _communication_failures(
            scenario, base, max_bits_regression, max_extra_rounds
        )
        reasons = []
        if gated_ratio > max_regression:
            reasons.append(f"{gated_ratio:.2f}x wall")
        reasons.extend(comm_problems)
        marker = "FAIL" if reasons else "ok"
        floored = " (floored)" if base["wall_time_s"] < noise_floor_s else ""
        comm_note = ("; " + "; ".join(comm_problems)) if comm_problems else ""
        print(
            f"[{marker}] {scenario['id']}: {scenario['wall_time_s']:.4f}s "
            f"vs baseline {base['wall_time_s']:.4f}s = {raw_ratio:.2f}x, "
            f"gated {gated_ratio:.2f}x{floored}, "
            f"{scenario.get('total_comm_bits', 0)} comm bits, "
            f"{scenario.get('rounds', 0)} rounds{comm_note}"
        )
        if reasons:
            failures.append((scenario["id"], "; ".join(reasons)))
    if missing:
        print(
            f"{len(missing)} scenario(s) have no baseline entry in {baseline_path}; "
            f"refresh the baseline to cover: {', '.join(missing)}"
        )
    if failures:
        print(
            f"{len(failures)} scenario(s) regressed (wall time or communication): "
            f"{', '.join(f'{i} ({reason})' for i, reason in failures)}"
        )
    if missing or failures:
        return 1
    print(
        f"no scenario regressed more than {max_regression:.1f}x wall time, "
        f"{max_bits_regression:.1f}x bits, or +{max_extra_rounds} rounds vs "
        f"{baseline_path}"
    )
    return 0


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--tier", choices=sorted(TIERS), default="small")
    parser.add_argument("--repeats", type=int, default=3)
    parser.add_argument("--models", nargs="+", default=None, choices=MODELS)
    parser.add_argument("--problems", nargs="+", default=list(PROBLEMS), choices=PROBLEMS)
    parser.add_argument(
        "--backends",
        nargs="+",
        default=None,
        help=(
            "kernel backends to run the grid on (e.g. numpy fused); with more "
            "than one, the report gains a backend_speedups block relative to "
            "the first.  Default: the resolved default backend."
        ),
    )
    parser.add_argument(
        "--n",
        type=int,
        default=None,
        help="override the tier's constraint count (CI smoke budgets)",
    )
    parser.add_argument(
        "--history",
        action="store_true",
        help="print the checked-in benchmark snapshots' geomeans per tier/backend and exit",
    )
    parser.add_argument("-o", "--output", default="BENCH.json")
    parser.add_argument(
        "--baseline", default=None, help="baseline BENCH.json to gate regressions against"
    )
    parser.add_argument(
        "--max-regression",
        type=float,
        default=2.0,
        help="maximum allowed wall-time ratio vs the baseline (with --baseline)",
    )
    parser.add_argument(
        "--noise-floor-s",
        type=float,
        default=0.015,
        help="baseline wall times are clamped up to this before the ratio test",
    )
    parser.add_argument(
        "--max-bits-regression",
        type=float,
        default=2.0,
        help="maximum allowed total-communication-bits ratio vs the baseline",
    )
    parser.add_argument(
        "--max-extra-rounds",
        type=int,
        default=1,
        help="maximum allowed extra rounds/passes vs the baseline",
    )
    parser.add_argument(
        "--session-bench",
        action="store_true",
        help=(
            "also measure session amortisation (per-solve latency at k=1 vs "
            "k=16 solves through one session on a ProcessPoolTransport) and "
            "emit it as the session_amortization block"
        ),
    )
    parser.add_argument(
        "--transport-bench",
        action="store_true",
        help=(
            "also measure the process-transport data plane (dispatch wall + "
            "per-worker RSS/USS, shared memory vs pickle wire) and emit it as "
            "the transport_bench block"
        ),
    )
    parser.add_argument(
        "--transport-only",
        action="store_true",
        help="skip the scenario grid; run only the transport bench (implies --transport-bench)",
    )
    parser.add_argument(
        "--transport-n",
        type=int,
        default=None,
        help="constraint count for the transport bench (default: the xlarge tier's n)",
    )
    parser.add_argument(
        "--transport-workers",
        type=int,
        nargs="+",
        default=list(TRANSPORT_WORKERS),
        help="worker counts for the transport bench cells",
    )
    parser.add_argument(
        "--transport-rounds", type=int, default=TRANSPORT_ROUNDS,
        help="task rounds per transport-bench repeat",
    )
    parser.add_argument(
        "--transport-repeats", type=int, default=TRANSPORT_REPEATS,
        help="full dispatch cycles per transport-bench cell (median reported)",
    )
    parser.add_argument(
        "--min-transport-speedup",
        type=float,
        default=None,
        help=(
            "fail unless shared memory beats the pickle wire by at least this "
            "dispatch ratio at every measured worker count (CI gate)"
        ),
    )
    args = parser.parse_args(argv)

    if args.history:
        return print_history()

    if args.transport_only:
        args.transport_bench = True
        grid = []
    else:
        models = args.models or list(TIER_MODELS.get(args.tier, MODELS))
        grid = build_grid(args.tier, models, args.problems, args.backends, n=args.n)
    scenarios = []
    for scenario in grid:
        row = scenario.run(max(1, args.repeats))
        scenarios.append(row)
        print(
            f"{row['id']}: {row['wall_time_s']:.4f}s "
            f"[{row['kernel_backend']}], {row['iterations']} iterations, "
            f"{row['oracle_calls']} oracle calls, cache hit rate {row['cache_hit_rate']}"
        )

    report = {
        "schema": SCHEMA,
        "tier": args.tier,
        "repeats": args.repeats,
        "dimension": TIER_DIMENSIONS.get(args.tier, DIMENSION),
        "n": args.n if args.n is not None else TIERS[args.tier],
        "python": platform.python_version(),
        "numpy": np.__version__,
        "platform": platform.platform(),
        "scenarios": scenarios,
        "geomean_wall_time_s": round(
            geomean([s["wall_time_s"] for s in scenarios]), 6
        ),
        "total_comm_bits": sum(s["total_comm_bits"] for s in scenarios),
    }
    if args.backends and len(args.backends) > 1:
        report["backend_speedups"] = backend_speedups(scenarios, args.backends)
        for backend, ratio in report["backend_speedups"]["speedups"].items():
            print(
                f"backend speedup {backend} vs {args.backends[0]}: {ratio}x geomean"
            )
    if args.session_bench:
        report["session_amortization"] = session_amortization()
        amort = report["session_amortization"]
        print(
            f"session amortization: {amort['per_solve_s_k1']:.4f}s/solve at k=1 "
            f"vs {amort['per_solve_s_k16']:.4f}s/solve at k={amort['batch']} "
            f"({amort['amortization_speedup']}x)"
        )
    if args.transport_bench:
        report["transport_bench"] = transport_bench(
            n=args.transport_n,
            workers_list=args.transport_workers,
            rounds=args.transport_rounds,
            repeats=args.transport_repeats,
        )
        for workers, ratio in report["transport_bench"]["speedups"].items():
            print(f"transport shm speedup at {workers} workers: {ratio}x dispatch")
        for workers, ratio in report["transport_bench"]["tcp_overhead"].items():
            print(f"transport tcp overhead at {workers} workers: {ratio}x of pickle")
    with open(args.output, "w") as handle:
        json.dump(report, handle, indent=2)
        handle.write("\n")
    print(f"geomean wall time: {report['geomean_wall_time_s']:.4f}s -> {args.output}")

    if args.min_transport_speedup is not None:
        transport = report.get("transport_bench") or {}
        minimum = transport.get("min_speedup")
        if minimum is None:
            print("--min-transport-speedup requires --transport-bench results")
            return 1
        if minimum < args.min_transport_speedup:
            print(
                f"transport speedup gate FAILED: min shm-over-pickle dispatch "
                f"ratio {minimum}x < required {args.min_transport_speedup}x"
            )
            return 1
        print(
            f"transport speedup gate ok: min {minimum}x >= "
            f"{args.min_transport_speedup}x"
        )

    if args.baseline:
        return compare_to_baseline(
            report,
            args.baseline,
            args.max_regression,
            args.noise_floor_s,
            args.max_bits_regression,
            args.max_extra_rounds,
        )
    return 0


if __name__ == "__main__":
    sys.exit(main())
