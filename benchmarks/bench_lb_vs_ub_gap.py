"""E9 — Theorems 9 and 10: streaming / coordinator lower bounds versus the upper bounds.

The lower bounds say an ``r``-pass streaming algorithm for 2-dimensional LP
needs ``Omega(n^{1/2r} / r^3)`` space and an ``r``-round coordinator protocol
needs ``Omega(n^{1/2r} / r^2)`` communication.  The benchmark solves the
2-d LPs obtained from hard TCI instances (the reduction of Corollary 8) with
the paper's own upper-bound algorithms and reports measured space /
communication next to the lower-bound curves: the measurements must sit above
the lower bounds, and the remaining gap is the (expected) ``n^{1/r}`` vs
``n^{1/2r}`` slack plus poly-log factors.
"""

from __future__ import annotations

import pytest

from repro.algorithms import coordinator_clarkson_solve, streaming_clarkson_solve
from repro.lower_bounds import sample_hard_instance, tci_to_linear_program
from repro.lower_bounds.tci import lp_optimum_to_index

from conftest import emit_row, record, solver_params


@pytest.mark.parametrize("r", [1, 2])
def test_streaming_space_vs_lower_bound(benchmark, r):
    hard = sample_hard_instance(branching=20, rounds=2, seed=4)  # n = 400 points
    lp = tci_to_linear_program(hard.instance)
    params = solver_params(lp, r=r)

    def run():
        return streaming_clarkson_solve(lp, r=r, params=params, rng=2)

    result = benchmark.pedantic(run, rounds=1, iterations=1)
    n = lp.num_constraints
    passes = result.resources.passes
    lower_bound_items = (n ** (1.0 / (2 * max(1, passes)))) / (max(1, passes) ** 3)
    decoded = lp_optimum_to_index(result.witness[0], hard.instance.length)
    emit_row(
        "E9-streaming-gap",
        n=n,
        r=r,
        passes=passes,
        measured_space_items=result.resources.space_peak_items,
        lower_bound_items=round(lower_bound_items, 2),
        answer_correct=decoded == hard.answer,
    )
    record(benchmark, r=r, space=result.resources.space_peak_items)
    assert decoded == hard.answer
    assert result.resources.space_peak_items >= lower_bound_items


@pytest.mark.parametrize("r", [1, 2])
def test_coordinator_communication_vs_lower_bound(benchmark, r):
    hard = sample_hard_instance(branching=20, rounds=2, seed=5)
    lp = tci_to_linear_program(hard.instance)
    params = solver_params(lp, r=r)

    def run():
        return coordinator_clarkson_solve(lp, num_sites=2, r=r, params=params, rng=3)

    result = benchmark.pedantic(run, rounds=1, iterations=1)
    n = lp.num_constraints
    rounds = max(1, result.resources.rounds)
    lower_bound_values = (n ** (1.0 / (2 * rounds))) / (rounds ** 2)
    decoded = lp_optimum_to_index(result.witness[0], hard.instance.length)
    emit_row(
        "E9-coordinator-gap",
        n=n,
        r=r,
        rounds=result.resources.rounds,
        measured_comm_kbits=result.resources.total_communication_bits // 1000,
        lower_bound_values=round(lower_bound_values, 2),
        answer_correct=decoded == hard.answer,
    )
    record(benchmark, r=r, communication_bits=result.resources.total_communication_bits)
    assert decoded == hard.answer
    assert result.resources.total_communication_bits / 64 >= lower_bound_values
