"""A2 — Ablation: the basis-computation backend (HiGHS vs the from-scratch Seidel).

Algorithm 1 treats the basis computation as a black box (``T_b`` in the
paper); this ablation times the two backends on the sampled sub-LPs the
algorithm actually produces and checks they return the same optima.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.problems.seidel import seidel_solve
from repro.problems.solvers import solve_lp
from repro.workloads import random_feasible_lp

from conftest import emit_row, record


@pytest.mark.parametrize("dimension", [2, 3, 4])
@pytest.mark.parametrize("sample_size", [200, 1000])
def test_seidel_backend(benchmark, dimension, sample_size):
    instance = random_feasible_lp(sample_size, dimension, seed=dimension * 10 + 1).problem

    def run():
        return seidel_solve(instance.c, instance.a, instance.b, box=1e6, rng=0)

    result = benchmark(run)
    reference = solve_lp(instance.c, a_ub=instance.a, b_ub=instance.b, bounds=(-1e6, 1e6))
    emit_row(
        "A2-seidel",
        d=dimension,
        m=sample_size,
        objective_gap=round(abs(result.objective - reference.objective), 9),
    )
    record(benchmark, backend="seidel", d=dimension, m=sample_size)
    assert np.isclose(result.objective, reference.objective, rtol=1e-5, atol=1e-5)


@pytest.mark.parametrize("dimension", [2, 3, 4])
@pytest.mark.parametrize("sample_size", [200, 1000])
def test_highs_backend(benchmark, dimension, sample_size):
    instance = random_feasible_lp(sample_size, dimension, seed=dimension * 10 + 1).problem

    def run():
        return solve_lp(instance.c, a_ub=instance.a, b_ub=instance.b, bounds=(-1e6, 1e6))

    result = benchmark(run)
    emit_row(
        "A2-highs",
        d=dimension,
        m=sample_size,
        objective=round(result.objective, 6),
    )
    record(benchmark, backend="highs", d=dimension, m=sample_size)
