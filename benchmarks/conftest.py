"""Shared helpers for the benchmark harness.

Every benchmark regenerates one experiment of `DESIGN.md` (per-experiment
index) and prints the paper-style rows it measures, so the captured output of
``pytest benchmarks/ --benchmark-only`` doubles as the data behind
``EXPERIMENTS.md``.
"""

from __future__ import annotations

from repro.core.clarkson import practical_parameters


def solver_params(problem, r: int):
    """The constant-free "practical profile" used by every benchmark run.

    See ``repro.core.clarkson.practical_parameters``: same asymptotics as the
    paper (samples of ``~ n^{1/r}``, success threshold of ``~ 1/n^{1/r}``),
    with the loose Lemma 2.2 constants replaced by Clarkson's sampling bound
    so that the sub-linear regime is visible at laptop scale.
    """
    return practical_parameters(problem, r=r, keep_trace=False)


def emit_row(experiment: str, **fields) -> None:
    """Print one result row (shows up in bench_output.txt)."""
    payload = ", ".join(f"{key}={value}" for key, value in fields.items())
    print(f"\n[{experiment}] {payload}")


def record(benchmark, **fields) -> None:
    """Attach measured quantities to the pytest-benchmark record."""
    for key, value in fields.items():
        benchmark.extra_info[key] = value
