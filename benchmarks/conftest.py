"""Shared helpers for the benchmark harness.

Every benchmark regenerates one experiment of `DESIGN.md` (per-experiment
index) and prints the paper-style rows it measures, so the captured output of
``pytest benchmarks/ --benchmark-only`` doubles as the data behind
``EXPERIMENTS.md``.

The helpers are built on the ``repro.api`` front door: the "practical
profile" is expressed as a typed :class:`~repro.api.config.SolverConfig`, and
``facade_solve`` dispatches through :func:`repro.solve` with model-specific
overrides (``num_sites=``, ``delta=``, ...) resolved by the registry.
"""

from __future__ import annotations

from repro import SolverConfig, solve


def practical_config(problem, r: int, **overrides) -> SolverConfig:
    """The constant-free "practical profile" as a typed config.

    See :meth:`repro.api.config.SolverConfig.practical`: same asymptotics as
    the paper (samples of ``~ n^{1/r}``, success threshold of
    ``~ 1/n^{1/r}``), with the loose Lemma 2.2 constants replaced by
    Clarkson's sampling bound so that the sub-linear regime is visible at
    laptop scale.  Traces are disabled for benchmarking.  ``overrides`` must
    be base :class:`SolverConfig` keys (``seed=``, ``max_iterations=``, ...);
    model-specific keys (``num_sites=``, ``delta=``) go to ``facade_solve``.
    """
    return SolverConfig.practical(problem, r=r, keep_trace=False, **overrides)


def solver_params(problem, r: int):
    """The practical profile as :class:`ClarksonParameters` (legacy drivers)."""
    return practical_config(problem, r).to_parameters()


def facade_solve(problem, model: str, r: int = 2, seed=0, **overrides):
    """One benchmark run through the ``repro.solve`` front door.

    ``overrides`` may contain any key of the model's config class
    (``num_sites``, ``delta``, ``num_machines``, ...); the registry validates
    them against the model at hand.
    """
    return solve(
        problem,
        model=model,
        config=practical_config(problem, r, seed=seed),
        **overrides,
    )


def emit_row(experiment: str, **fields) -> None:
    """Print one result row (shows up in bench_output.txt)."""
    payload = ", ".join(f"{key}={value}" for key, value in fields.items())
    print(f"\n[{experiment}] {payload}")


def record(benchmark, **fields) -> None:
    """Attach measured quantities to the pytest-benchmark record."""
    for key, value in fields.items():
        benchmark.extra_info[key] = value
