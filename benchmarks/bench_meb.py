"""E5 — Theorem 6: the same bounds for core vector machines (minimum enclosing ball)."""

from __future__ import annotations

import pytest

from repro.algorithms import (
    coordinator_clarkson_solve,
    mpc_clarkson_solve,
    streaming_clarkson_solve,
)
from repro.problems import MinimumEnclosingBall
from repro.workloads import clustered_points

from conftest import emit_row, record, solver_params


@pytest.fixture(scope="module")
def meb_instance():
    points = clustered_points(3000, 3, num_clusters=4, seed=7)
    problem = MinimumEnclosingBall(points=points)
    exact = problem.solve()
    return problem, exact


def test_meb_streaming(benchmark, meb_instance):
    problem, exact = meb_instance
    params = solver_params(problem, r=2)

    def run():
        return streaming_clarkson_solve(problem, r=2, params=params, rng=1)

    result = benchmark.pedantic(run, rounds=1, iterations=1)
    emit_row(
        "E5-meb-streaming",
        n=problem.num_constraints,
        passes=result.resources.passes,
        space_items=result.resources.space_peak_items,
        radius_ratio=round(result.value.radius / exact.value.radius, 4),
    )
    record(benchmark, passes=result.resources.passes)
    assert result.value.radius == pytest.approx(exact.value.radius, rel=1e-2)


def test_meb_coordinator(benchmark, meb_instance):
    problem, exact = meb_instance
    params = solver_params(problem, r=2)

    def run():
        return coordinator_clarkson_solve(problem, num_sites=8, r=2, params=params, rng=2)

    result = benchmark.pedantic(run, rounds=1, iterations=1)
    emit_row(
        "E5-meb-coordinator",
        n=problem.num_constraints,
        rounds=result.resources.rounds,
        comm_kbits=result.resources.total_communication_bits // 1000,
        radius_ratio=round(result.value.radius / exact.value.radius, 4),
    )
    record(benchmark, rounds=result.resources.rounds)
    assert result.value.radius == pytest.approx(exact.value.radius, rel=1e-2)


def test_meb_mpc(benchmark, meb_instance):
    problem, exact = meb_instance
    params = solver_params(problem, r=2)

    def run():
        return mpc_clarkson_solve(problem, delta=0.5, num_machines=16, params=params, rng=3)

    result = benchmark.pedantic(run, rounds=1, iterations=1)
    emit_row(
        "E5-meb-mpc",
        n=problem.num_constraints,
        rounds=result.resources.rounds,
        load_kbits=result.resources.max_machine_load_bits // 1000,
        radius_ratio=round(result.value.radius / exact.value.radius, 4),
    )
    record(benchmark, rounds=result.resources.rounds)
    assert result.value.radius == pytest.approx(exact.value.radius, rel=1e-2)
