"""E1 — Result 1 / Theorems 1 and 4, streaming model.

Claim: linear programming can be solved in ``O(d * r)`` passes with
``O~(n^{1/r}) * poly(d, log n)`` space.  The benchmark sweeps ``n`` and ``r``
on random over-constrained LPs and records the measured pass counts and peak
space, which should (a) stay within the ``O(d * r)`` pass budget independent
of ``n`` and (b) shrink as ``r`` grows for fixed ``n``.
"""

from __future__ import annotations

import pytest

from repro.algorithms import streaming_clarkson_solve
from repro.workloads import random_polytope_lp

from conftest import emit_row, record, solver_params


@pytest.mark.parametrize("n", [2000, 8000])
@pytest.mark.parametrize("r", [1, 2, 3])
def test_streaming_lp_passes_and_space(benchmark, n, r):
    instance = random_polytope_lp(n, 2, seed=n + r)
    params = solver_params(instance.problem, r=r)

    def run():
        return streaming_clarkson_solve(instance.problem, r=r, params=params, rng=17)

    result = benchmark.pedantic(run, rounds=1, iterations=1)
    d = instance.problem.dimension
    pass_budget = 8 * (d + 1) * r  # 2 passes/iteration, generous constant
    emit_row(
        "E1-streaming",
        n=n,
        d=d,
        r=r,
        passes=result.resources.passes,
        pass_budget=pass_budget,
        space_items=result.resources.space_peak_items,
        space_fraction=round(result.resources.space_peak_items / n, 3),
        objective=round(result.value.objective, 6),
    )
    record(
        benchmark,
        n=n,
        r=r,
        passes=result.resources.passes,
        space_items=result.resources.space_peak_items,
    )
    assert result.resources.passes <= pass_budget


@pytest.mark.parametrize("dimension", [2, 3, 4])
def test_streaming_lp_dimension_sweep(benchmark, dimension):
    """Pass count grows linearly (not exponentially) with the dimension."""
    instance = random_polytope_lp(4000, dimension, seed=dimension)
    params = solver_params(instance.problem, r=2)

    def run():
        return streaming_clarkson_solve(instance.problem, r=2, params=params, rng=23)

    result = benchmark.pedantic(run, rounds=1, iterations=1)
    emit_row(
        "E1-streaming-dimension",
        n=4000,
        d=dimension,
        r=2,
        passes=result.resources.passes,
        space_items=result.resources.space_peak_items,
    )
    record(benchmark, d=dimension, passes=result.resources.passes)
    assert result.resources.passes <= 8 * (dimension + 1) * 2
