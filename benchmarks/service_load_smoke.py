"""Concurrency smoke for the HTTP front end: many clients, zero divergence.

Boots an in-process :class:`~repro.server.ReproServer` (or targets a live
one via ``REPRO_SERVICE_URL``), fires ``--clients`` concurrent threads —
each a fresh :class:`~repro.server.ServiceClient` submitting one problem
from a mixed lp/meb/svm/qp pool — and asserts every result is
**bit-identical** to the in-process ``repro.solve()`` reference for that
problem.  Any divergence or transport error exits non-zero: this is the CI
gate that tenancy bookkeeping, the per-ticket event plumbing, and the
thread-per-connection HTTP layer do not perturb solver determinism under
load.

Run with::

    PYTHONPATH=src python benchmarks/service_load_smoke.py --clients 100
"""

from __future__ import annotations

import argparse
import sys
import threading
import time

import numpy as np

import repro
from repro.server import ReproServer, ServiceClient
from repro.workloads import (
    make_separable_classification,
    random_polytope_lp,
    svm_problem,
    uniform_ball_points,
)

CONFIG = dict(r=2, sample_size=300, success_threshold=0.02, seed=0)


def _problem_pool() -> list:
    from repro.problems.meb import MinimumEnclosingBall
    from repro.problems.qp import ConvexQuadraticProgram

    rng = np.random.default_rng(9)
    q_matrix = np.diag(np.linspace(1.0, 2.0, 3))
    normals = rng.normal(size=(500, 3))
    normals /= np.linalg.norm(normals, axis=1, keepdims=True)
    anchor = rng.uniform(-1.0, 1.0, size=3)
    h_vector = normals @ anchor - rng.uniform(0.1, 1.0, size=500)
    return [
        random_polytope_lp(2000, 2, seed=21).problem,
        MinimumEnclosingBall(uniform_ball_points(1500, 3, seed=22)),
        svm_problem(make_separable_classification(1500, 2, seed=23)),
        ConvexQuadraticProgram(q_matrix, rng.normal(size=3), normals, h_vector),
    ]


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--clients", type=int, default=100)
    parser.add_argument("--workers", type=int, default=4)
    parser.add_argument("--timeout", type=float, default=180.0)
    parser.add_argument(
        "--url",
        default=None,
        help="target a live server instead of booting one in-process "
        "(defaults to $REPRO_SERVICE_URL when set)",
    )
    args = parser.parse_args()

    import os

    url = args.url or os.environ.get("REPRO_SERVICE_URL")
    problems = _problem_pool()
    references = [
        repro.solve(problem, model="streaming", **CONFIG) for problem in problems
    ]

    failures: list[str] = []
    lock = threading.Lock()

    def one_client(index: int, base_url: str) -> None:
        problem = problems[index % len(problems)]
        reference = references[index % len(problems)]
        try:
            client = ServiceClient(base_url, timeout=args.timeout)
            remote = client.solve(
                problem, model="streaming", config=CONFIG, timeout=args.timeout
            )
        except Exception as exc:  # noqa: BLE001 - collected, reported, fatal
            with lock:
                failures.append(f"client {index}: {type(exc).__name__}: {exc}")
            return
        if (
            remote.value != reference.value
            or remote.basis_indices != reference.basis_indices
            or remote.iterations != reference.iterations
        ):
            with lock:
                failures.append(f"client {index}: result diverged from reference")

    def run(base_url: str) -> float:
        threads = [
            threading.Thread(target=one_client, args=(i, base_url))
            for i in range(args.clients)
        ]
        start = time.perf_counter()
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        return time.perf_counter() - start

    if url:
        print(f"targeting live server at {url}")
        wall = run(url)
        stats = ServiceClient(url).healthz()["services"]
    else:
        with ReproServer(port=0, model="streaming", max_workers=args.workers, **CONFIG) as server:
            print(f"booted in-process server at {server.url} ({args.workers} workers)")
            wall = run(server.url)
            stats = server.stats()

    done = sum(s.get("done", 0) for s in stats.values())
    print(
        f"{args.clients} concurrent clients in {wall:.2f}s "
        f"({args.clients / wall:.1f} req/s); server counted {done} done"
    )
    if failures:
        print(f"FAILED: {len(failures)} clients diverged or errored:")
        for line in failures[:10]:
            print(f"  {line}")
        return 1
    print("OK: every client got a bit-identical result")
    return 0


if __name__ == "__main__":
    sys.exit(main())
