"""E7 — Communication of the coordinator algorithm vs the ship-everything baseline.

The naive coordinator protocol ships all ``n`` constraints (``Theta(n)``
communication); Theorem 2 ships ``O~(n^{1/r} + k)``.  The benchmark sweeps
``n`` and reports the ratio, which should grow with ``n``.
"""

from __future__ import annotations

import pytest

from repro.algorithms import coordinator_clarkson_solve, ship_all_coordinator
from repro.workloads import random_polytope_lp

from conftest import emit_row, record, solver_params


@pytest.mark.parametrize("n", [2000, 8000, 16000])
def test_coordinator_vs_ship_all(benchmark, n):
    instance = random_polytope_lp(n, 2, seed=n)
    params = solver_params(instance.problem, r=2)

    def run():
        naive = ship_all_coordinator(instance.problem, num_sites=8)
        clever = coordinator_clarkson_solve(
            instance.problem, num_sites=8, r=2, params=params, rng=13
        )
        return naive, clever

    naive, clever = benchmark.pedantic(run, rounds=1, iterations=1)
    ratio = naive.resources.total_communication_bits / max(
        1, clever.resources.total_communication_bits
    )
    emit_row(
        "E7-vs-naive",
        n=n,
        naive_kbits=naive.resources.total_communication_bits // 1000,
        clarkson_kbits=clever.resources.total_communication_bits // 1000,
        savings_ratio=round(ratio, 2),
    )
    record(benchmark, n=n, savings_ratio=ratio)
    assert clever.resources.total_communication_bits < naive.resources.total_communication_bits
    assert abs(clever.value.objective - naive.value.objective) <= 1e-4 * max(
        1.0, abs(naive.value.objective)
    )
