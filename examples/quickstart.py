"""Quickstart: solve one over-constrained low-dimensional LP in every model.

Run with::

    python examples/quickstart.py

The script builds a random 3-dimensional linear program with 20,000
constraints, solves it exactly in memory, and then solves it again with the
paper's meta-algorithm in the multi-pass streaming, coordinator, and MPC
models, printing the resource costs each model is measured in.
"""

from __future__ import annotations

from repro import (
    coordinator_clarkson_solve,
    exact_in_memory,
    mpc_clarkson_solve,
    random_feasible_lp,
    streaming_clarkson_solve,
)
from repro.core import practical_parameters


def main() -> None:
    instance = random_feasible_lp(num_constraints=20_000, dimension=3, seed=0)
    problem = instance.problem
    params = practical_parameters(problem, r=2)

    exact = exact_in_memory(problem)
    print(f"exact optimum            : {exact.value.objective:.6f}")

    streaming = streaming_clarkson_solve(problem, r=2, params=params, rng=0)
    print(
        f"streaming  (r=2)         : {streaming.value.objective:.6f}  "
        f"passes={streaming.resources.passes}  "
        f"peak space={streaming.resources.space_peak_items} constraints "
        f"({streaming.resources.space_peak_items / problem.num_constraints:.1%} of input)"
    )

    coordinator = coordinator_clarkson_solve(problem, num_sites=8, r=2, params=params, rng=0)
    print(
        f"coordinator (k=8, r=2)   : {coordinator.value.objective:.6f}  "
        f"rounds={coordinator.resources.rounds}  "
        f"communication={coordinator.resources.total_communication_bits / 8 / 1024:.1f} KiB"
    )

    mpc = mpc_clarkson_solve(problem, delta=0.5, num_machines=32, params=params, rng=0)
    print(
        f"MPC (delta=0.5, k=32)    : {mpc.value.objective:.6f}  "
        f"rounds={mpc.resources.rounds}  "
        f"max load={mpc.resources.max_machine_load_bits / 8 / 1024:.1f} KiB per machine"
    )


if __name__ == "__main__":
    main()
