"""Quickstart: one front door — ``repro.solve()`` — in every computation model.

Run with::

    python examples/quickstart.py

The script builds a random 3-dimensional linear program with 20,000
constraints and solves it through the ``solve()`` facade: exactly in memory,
then with the paper's meta-algorithm in the multi-pass streaming,
coordinator, and MPC models — one call each, parameterized by a registered
model name and a typed config.  It finishes with a small batch run through
``solve_many()``.
"""

from __future__ import annotations

from repro import (
    CoordinatorConfig,
    MPCConfig,
    StreamingConfig,
    available_models,
    random_feasible_lp,
    solve,
    solve_many,
)


def main() -> None:
    instance = random_feasible_lp(num_constraints=20_000, dimension=3, seed=0)
    problem = instance.problem
    print(f"registered models        : {', '.join(available_models())}")

    exact = solve(problem, model="exact")
    print(f"exact optimum            : {exact.value.objective:.6f}")

    streaming = solve(
        problem,
        model="streaming",
        config=StreamingConfig.practical(problem, r=2, seed=0),
    )
    print(
        f"streaming  (r=2)         : {streaming.value.objective:.6f}  "
        f"passes={streaming.resources.passes}  "
        f"peak space={streaming.resources.space_peak_items} constraints "
        f"({streaming.resources.space_peak_items / problem.num_constraints:.1%} of input)"
    )

    coordinator = solve(
        problem,
        model="coordinator",
        config=CoordinatorConfig.practical(problem, r=2, seed=0, num_sites=8),
    )
    print(
        f"coordinator (k=8, r=2)   : {coordinator.value.objective:.6f}  "
        f"rounds={coordinator.resources.rounds}  "
        f"communication={coordinator.resources.total_communication_bits / 8 / 1024:.1f} KiB"
    )

    mpc = solve(
        problem,
        model="mpc",
        config=MPCConfig.practical(problem, r=2, seed=0, delta=0.5, num_machines=32),
    )
    print(
        f"MPC (delta=0.5, k=32)    : {mpc.value.objective:.6f}  "
        f"rounds={mpc.resources.rounds}  "
        f"max load={mpc.resources.max_machine_load_bits / 8 / 1024:.1f} KiB per machine"
    )

    scenarios = [
        random_feasible_lp(num_constraints=5_000, dimension=3, seed=s).problem
        for s in (1, 2, 3)
    ]
    batch = solve_many(
        scenarios,
        model="streaming",
        config=StreamingConfig.practical(scenarios[0], r=2),
        max_workers=3,
        root_seed=7,
    )
    total = batch.resources_total()
    print(
        f"batch ({len(batch)} streaming LPs): "
        f"optima={[round(r.value.objective, 4) for r in batch]}  "
        f"total passes={total.passes}"
    )


if __name__ == "__main__":
    main()
