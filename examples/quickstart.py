"""Quickstart: sessions, warm re-solves, the service, and the one-shot facade.

Run with::

    python examples/quickstart.py

The script opens a stateful **session** (``repro.session``), solves a random
3-dimensional linear program with 20,000 constraints, then *edits* the
instance — streaming in extra constraints through an ingestion handle and
warm-restarting from the previous weight state — before touring the async
``SolverService`` front end and the classic one-shot ``solve()`` /
``solve_many()`` facade.
"""

from __future__ import annotations

import numpy as np

from repro import (
    CoordinatorConfig,
    MPCConfig,
    ResourceBudget,
    SolverService,
    StreamingConfig,
    available_models,
    random_feasible_lp,
    session,
    solve,
    solve_many,
)


def main() -> None:
    instance = random_feasible_lp(num_constraints=20_000, dimension=3, seed=0)
    problem = instance.problem
    print(f"registered models        : {', '.join(available_models())}")

    # ------------------------------------------------------------------ #
    # The session API: one long-lived solver, many related solves.
    # ------------------------------------------------------------------ #
    with session(
        model="streaming",
        config=StreamingConfig.practical(problem, r=2, seed=0),
    ) as sess:
        first = sess.solve(problem)
        print(
            f"session cold solve       : {first.value.objective:.6f}  "
            f"passes={first.resources.passes}  "
            f"stored bases={first.warm.new_bases}"
        )

        # Stream new constraints in over time; finalize() warm-restarts from
        # the prior Clarkson weight state instead of solving from scratch.
        witness = np.asarray(first.witness, dtype=float)
        tilt = problem.c + 0.3 * np.roll(problem.c, 1)
        handle = sess.ingest()
        handle.feed((-tilt.reshape(1, -1), np.array([-(tilt @ witness) - 0.05])))
        handle.feed((np.eye(3)[:1], np.array([float(witness[0]) + 10.0])))
        warm = handle.finalize()
        print(
            f"warm re-solve (ingested) : {warm.value.objective:.6f}  "
            f"reused bases={warm.warm.reused_bases}  "
            f"fast path={warm.warm.fast_path}  iterations={warm.iterations}"
        )

        # Pure additions that do not cut the optimum re-certify in one sweep.
        satisfied = (np.eye(3)[1:2], np.array([float(witness[1]) + 10.0]))
        fast = sess.resolve_with(added=satisfied)
        print(
            f"warm re-solve (fast path): {fast.value.objective:.6f}  "
            f"fast path={fast.warm.fast_path}  iterations={fast.iterations}"
        )

    # ------------------------------------------------------------------ #
    # The async service: tickets, deadlines, budgets.
    # ------------------------------------------------------------------ #
    scenarios = [
        random_feasible_lp(num_constraints=5_000, dimension=3, seed=s).problem
        for s in (1, 2, 3)
    ]
    with SolverService(
        model="streaming",
        config=StreamingConfig.practical(scenarios[0], r=2, seed=0),
        max_workers=2,
    ) as svc:
        tickets = svc.submit_many(scenarios, deadline_s=60.0)
        results = [t.result() for t in tickets]
        print(
            f"service ({len(tickets)} tickets)      : "
            f"optima={[round(r.value.objective, 4) for r in results]}  "
            f"stats={svc.stats()}"
        )
        budgeted = svc.submit(scenarios[0], budget=ResourceBudget(iterations=1))
        try:
            budgeted.result()
            print("budgeted ticket          : finished within budget")
        except Exception as error:  # BudgetExceededError carries partial usage
            print(f"budgeted ticket          : {type(error).__name__} ({error})")

    # ------------------------------------------------------------------ #
    # The one-shot facade (an ephemeral session under the hood).
    # ------------------------------------------------------------------ #
    exact = solve(problem, model="exact")
    print(f"exact optimum            : {exact.value.objective:.6f}")

    coordinator = solve(
        problem,
        model="coordinator",
        config=CoordinatorConfig.practical(problem, r=2, seed=0, num_sites=8),
    )
    print(
        f"coordinator (k=8, r=2)   : {coordinator.value.objective:.6f}  "
        f"rounds={coordinator.resources.rounds}  "
        f"communication={coordinator.resources.total_communication_bits / 8 / 1024:.1f} KiB"
    )

    mpc = solve(
        problem,
        model="mpc",
        config=MPCConfig.practical(problem, r=2, seed=0, delta=0.5, num_machines=32),
    )
    print(
        f"MPC (delta=0.5, k=32)    : {mpc.value.objective:.6f}  "
        f"rounds={mpc.resources.rounds}  "
        f"max load={mpc.resources.max_machine_load_bits / 8 / 1024:.1f} KiB per machine"
    )

    batch = solve_many(
        scenarios,
        model="streaming",
        config=StreamingConfig.practical(scenarios[0], r=2),
        max_workers=3,
        root_seed=7,
    )
    total = batch.resources_total()
    print(
        f"batch ({len(batch)} streaming LPs): "
        f"optima={[round(r.value.objective, 4) for r in batch]}  "
        f"total passes={total.passes}"
    )


if __name__ == "__main__":
    main()
