"""Distributed hard-margin SVM training in the coordinator model (Theorem 5).

Labelled points are partitioned over 16 sites; the coordinator-model
meta-algorithm finds the maximum-margin separator while exchanging only a
tiny fraction of the data, and the result is compared against the exact
in-memory solution and against the ship-everything baseline.

Run with::

    python examples/distributed_svm.py
"""

from __future__ import annotations

import numpy as np

from repro import CoordinatorConfig, solve
from repro.workloads import make_separable_classification, svm_problem


def main() -> None:
    data = make_separable_classification(
        num_samples=30_000, num_features=3, seed=3, margin=0.3
    )
    problem = svm_problem(data)
    print(f"SVM instance: {problem.num_constraints} labelled points in R^{problem.dimension}")

    exact = solve(problem, model="exact")
    print(f"exact margin                 : {problem.margin(exact.witness):.4f}")

    naive = solve(problem, model="ship_all_coordinator", num_sites=16)
    distributed = solve(
        problem,
        model="coordinator",
        config=CoordinatorConfig.practical(problem, r=2, num_sites=16, seed=2),
    )

    print(
        f"distributed margin (k=16)    : {problem.margin(distributed.witness):.4f}  "
        f"rounds={distributed.resources.rounds}"
    )
    savings = (
        naive.resources.total_communication_bits
        / distributed.resources.total_communication_bits
    )
    print(
        f"communication                : "
        f"{distributed.resources.total_communication_bits / 8 / 1024:.1f} KiB vs "
        f"{naive.resources.total_communication_bits / 8 / 1024:.1f} KiB for ship-everything "
        f"({savings:.1f}x less)"
    )

    predictions = problem.classify(distributed.witness, data.points)
    accuracy = float(np.mean(predictions == data.labels))
    print(f"training accuracy            : {accuracy:.2%}")


if __name__ == "__main__":
    main()
