"""Streaming Chebyshev (minimax) regression — the paper's robust-regression motivation.

A linear model is fitted to 50,000 samples under the L-infinity loss.  The
resulting LP has only ``p + 1`` variables but 100,000 constraints, which is
exactly the over-constrained low-dimensional regime of the paper: the
streaming meta-algorithm fits the model in a handful of passes while storing
only a few thousand constraints at a time.

Run with::

    python examples/streaming_regression.py
"""

from __future__ import annotations

import numpy as np

from repro import StreamingConfig, solve
from repro.workloads import chebyshev_regression_lp, make_regression_data


def main() -> None:
    data = make_regression_data(
        num_samples=50_000, num_features=3, seed=7, noise_scale=0.2
    )
    lp = chebyshev_regression_lp(data)
    print(
        f"Chebyshev regression LP: {lp.num_constraints} constraints, "
        f"{lp.dimension} variables"
    )

    result = solve(
        lp, model="streaming", config=StreamingConfig.practical(lp, r=2, seed=1)
    )

    weights = np.array(result.witness[: data.features.shape[1]])
    max_residual = float(result.witness[-1])
    print(f"true weights      : {np.round(data.true_weights, 4)}")
    print(f"recovered weights : {np.round(weights, 4)}")
    print(f"max |residual|    : {max_residual:.4f}   (noise level was 0.2)")
    print(
        f"streaming cost    : {result.resources.passes} passes, "
        f"{result.resources.space_peak_items} constraints of working memory "
        f"({result.resources.space_peak_items / lp.num_constraints:.1%} of the input)"
    )


if __name__ == "__main__":
    main()
