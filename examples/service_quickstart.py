"""The HTTP/SSE front end in one sitting: submit, stream, verify, meter.

A problem is submitted to a running ``repro`` server over a real socket,
its per-round progress is streamed back as server-sent events, and the
final result is checked **bit-identical** to the in-process
``repro.solve()`` call with the same configuration — determinism survives
the network.  The tenant's metered usage is printed at the end.

Run with::

    python examples/service_quickstart.py

which boots a throwaway in-process server, or point it at a live one
(e.g. ``python -m repro serve --port 8731 --set seed=0``) with::

    REPRO_SERVICE_URL=http://127.0.0.1:8731 python examples/service_quickstart.py
"""

from __future__ import annotations

import os

import repro
from repro.server import ReproServer, ServiceClient
from repro.workloads import random_polytope_lp

#: Shared solver configuration: the server-side session and the local
#: reference solve must agree on every field for bit-identity.
CONFIG = dict(r=2, sample_size=300, success_threshold=0.02, seed=0)


def run(client: ServiceClient) -> None:
    problem = random_polytope_lp(num_constraints=20_000, dimension=3, seed=11).problem
    print(f"LP instance: {problem.num_constraints} constraints in R^{problem.dimension}")

    ticket = client.submit(problem, model="streaming", config=CONFIG)
    print(f"submitted ticket {ticket.id}; streaming progress over SSE:")
    for event in ticket.events(timeout=120):
        name, data = event["event"], event["data"]
        if name == "iteration":
            print(
                f"  iteration {data['iteration']}: "
                f"{data['num_violators']} violators "
                f"(weight fraction {data['violator_weight_fraction']:.4f})"
            )
        elif name in ("done", "failed"):
            print(f"  {name} after {data.get('wall_s', 0.0):.3f}s")

    remote = ticket.result(timeout=120)
    local = repro.solve(problem, model="streaming", **CONFIG)
    identical = (
        remote.value == local.value
        and remote.basis_indices == local.basis_indices
        and remote.iterations == local.iterations
    )
    print(f"objective over HTTP          : {remote.value}")
    print(f"objective in-process         : {local.value}")
    print(f"bit-identical                : {identical}")
    if not identical:
        raise SystemExit("remote result diverged from the in-process solve")

    usage = client.usage()
    print(
        f"tenant {usage['tenant']!r} usage : {usage['usage']['tickets']} tickets, "
        f"{usage['usage']['iterations']} iterations, "
        f"{usage['usage']['wall_s']:.3f}s wall"
    )


def main() -> None:
    url = os.environ.get("REPRO_SERVICE_URL")
    if url:
        print(f"using live server at {url}")
        run(ServiceClient(url))
        return
    print("booting a throwaway in-process server (set REPRO_SERVICE_URL to reuse one)")
    with ReproServer(port=0, model="streaming", **CONFIG) as server:
        run(ServiceClient(server.url))


if __name__ == "__main__":
    main()
