"""The communication fabric in action: star vs tree coordinator topologies.

The same SVM instance is trained in the coordinator model twice — once on
the classic star topology and once on the tree-aggregation variant — and the
per-round communication traces (from ``result.communication``, the fabric's
single reporting path) are printed side by side.  The tree pays rounds (one
per tree level) and forwarding bits, and wins on combinable gathers: the
coordinator receives one combined message instead of ``k`` replies.

A second section closes the loop with the lower-bound half of the repo: the
measured coordinator bits on a hard TCI instance are compared against the
``Omega(n^{1/2r} / r^2)`` communication lower-bound curve of Theorem 10.

Run with::

    python examples/fabric_topologies.py
"""

from __future__ import annotations

from repro import CoordinatorConfig, solve
from repro.lower_bounds import sample_hard_instance, tci_to_linear_program
from repro.workloads import make_separable_classification, svm_problem


def print_trace(title: str, result, max_rounds: int = 9) -> None:
    comm = result.communication
    print(f"\n{title}")
    print(
        f"  rounds={comm.rounds}  total={comm.total_bits / 8 / 1024:.1f} KiB  "
        f"max message={comm.max_message_bits / 8:.0f} B  "
        f"max per-node load={comm.max_load_bits / 8:.0f} B"
    )
    print("  round  down(B)  up(B)  load(B)")
    for index, entry in enumerate(comm.per_round[:max_rounds]):
        print(
            f"  {index:>5}  {entry.get('bits_down', 0) / 8:>7.0f}  "
            f"{entry.get('bits_up', 0) / 8:>5.0f}  {entry.get('load', 0) / 8:>7.0f}"
        )
    if len(comm.per_round) > max_rounds:
        print(f"  ... ({len(comm.per_round) - max_rounds} more rounds)")


def main() -> None:
    data = make_separable_classification(
        num_samples=20_000, num_features=3, seed=3, margin=0.3
    )
    problem = svm_problem(data)
    print(
        f"SVM instance: {problem.num_constraints} labelled points in "
        f"R^{problem.dimension}, k=16 sites"
    )

    star = solve(
        problem,
        model="coordinator",
        config=CoordinatorConfig.practical(problem, num_sites=16, seed=2),
    )
    tree = solve(
        problem,
        model="coordinator",
        config=CoordinatorConfig.practical(
            problem, num_sites=16, seed=2, topology="tree", fanout=2
        ),
    )
    assert star.value.squared_norm == tree.value.squared_norm

    print_trace("star topology (one round per exchange)", star)
    print_trace("tree topology (fanout 2: one round per level)", tree)

    star_up = min(r["bits_up"] for r in star.communication.per_round if r["bits_up"])
    tree_up = min(r["bits_up"] for r in tree.communication.per_round if r["bits_up"])
    print(
        f"\nlightest upstream round: star {star_up / 8:.0f} B (k replies) vs "
        f"tree {tree_up / 8:.0f} B (one combined message)"
    )

    # ------------------------------------------------------------------ #
    # Closing the loop with the lower-bound half of the repo (Theorem 10).
    # ------------------------------------------------------------------ #
    print("\nmeasured upper bound vs the communication lower-bound curve:")
    print("  n      rounds  measured (values)  lower bound (values)")
    for branching in (8, 14, 20):
        hard = sample_hard_instance(branching=branching, rounds=2, seed=branching)
        lp = tci_to_linear_program(hard.instance)
        n = lp.num_constraints
        result = solve(
            lp,
            model="coordinator",
            num_sites=2,
            r=2,
            seed=3,
            sample_size=max(8, n // 4),
            success_threshold=0.05,
            max_iterations=500,
        )
        rounds = max(1, result.resources.rounds)
        measured = result.resources.total_communication_bits / 64
        lower = (n ** (1.0 / (2 * rounds))) / (rounds ** 2)
        assert measured >= lower
        print(f"  {n:>5}  {rounds:>6}  {measured:>17.1f}  {lower:>20.3f}")
    print("  (measured >= lower bound on every grid point)")


if __name__ == "__main__":
    main()
