"""Core vector machine (minimum enclosing ball) in the MPC model (Theorem 6).

A clustered point cloud is spread over ~150 machines; the MPC meta-algorithm
computes its minimum enclosing ball with per-machine load far below the input
size, in a number of rounds governed by the load exponent delta.

Run with::

    python examples/mpc_minimum_enclosing_ball.py
"""

from __future__ import annotations

from repro import MPCConfig, solve
from repro.problems import MinimumEnclosingBall, badoiu_clarkson_meb
from repro.workloads import clustered_points


def main() -> None:
    points = clustered_points(
        num_points=25_000, dimension=3, num_clusters=5, domain_scale=8.0, seed=11
    )
    problem = MinimumEnclosingBall(points=points)
    print(f"MEB instance: {problem.num_constraints} points in R^{problem.dimension}")

    exact = solve(problem, model="exact")
    print(f"exact radius                    : {exact.value.radius:.5f}")

    core_set = badoiu_clarkson_meb(points, epsilon=0.01, rng=0)
    print(f"Badoiu-Clarkson (1+eps) radius  : {core_set.radius:.5f}")

    for delta in (0.5, 1.0 / 3.0):
        config = MPCConfig.practical(
            problem,
            r=max(1, round(1.0 / delta)),
            delta=delta,
            num_machines=150,
            seed=1,
        )
        result = solve(problem, model="mpc", config=config)
        input_bits = problem.num_constraints * problem.bit_size()
        print(
            f"MPC delta={delta:.2f}                  : radius={result.value.radius:.5f}  "
            f"rounds={result.resources.rounds}  "
            f"max load={result.resources.max_machine_load_bits / 8 / 1024:.1f} KiB "
            f"({result.resources.max_machine_load_bits / input_bits:.2%} of the input)"
        )


if __name__ == "__main__":
    main()
