"""The lower-bound machinery end to end (Section 5).

The script samples an instance from the recursive hard distribution D_r,
shows the round/communication trade-off of the interactive TCI protocol on
it, reduces the instance to a 2-dimensional linear program (Figure 1b), and
solves that LP with the paper's streaming algorithm — closing the loop
between the upper bounds of Section 3 and the lower bounds of Section 5.

Run with::

    python examples/lower_bound_tci.py
"""

from __future__ import annotations

from repro import (
    StreamingConfig,
    interactive_tci_protocol,
    one_round_tci_protocol,
    sample_hard_instance,
    solve,
    tci_to_linear_program,
)
from repro.lower_bounds.tci import lp_optimum_to_index


def main() -> None:
    hard = sample_hard_instance(branching=16, rounds=3, seed=5)
    n = hard.instance.length
    print(f"hard TCI instance: n = {n} points (N = 16, r = 3)")
    print(f"hidden special block            : {hard.special_block} of 16")
    print(f"ground-truth crossing index     : {hard.answer}")

    one_round = one_round_tci_protocol(hard.instance)
    print(
        f"one-round protocol              : {one_round.total_bits / 8 / 1024:.1f} KiB "
        f"(Theta(n), answer {one_round.answer})"
    )
    for rounds in (1, 2, 3, 4):
        result = interactive_tci_protocol(hard.instance, rounds=rounds)
        print(
            f"interactive protocol r={rounds}       : "
            f"{result.total_bits / 8 / 1024:6.2f} KiB "
            f"(~ r * n^(1/r) values, answer {result.answer})"
        )
    lb = (n ** (1.0 / 3)) / 9
    print(f"Theorem 7 lower bound (r=3)     : ~{lb:.0f} values must be communicated")

    lp = tci_to_linear_program(hard.instance)
    print(f"reduced 2-d LP                  : {lp.num_constraints} constraints")
    solved = solve(
        lp, model="streaming", config=StreamingConfig.practical(lp, r=2, seed=0)
    )
    decoded = lp_optimum_to_index(solved.witness[0], n)
    print(
        f"streaming LP solve              : passes={solved.resources.passes}, "
        f"decoded crossing index {decoded} "
        f"({'correct' if decoded == hard.answer else 'INCORRECT'})"
    )


if __name__ == "__main__":
    main()
