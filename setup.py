"""Legacy setup shim.

The project is fully described by ``pyproject.toml``; this file only exists
so that ``pip install -e .`` keeps working on environments without the
``wheel`` package (offline boxes), via the legacy ``setup.py develop`` path.
"""

from setuptools import setup

setup()
